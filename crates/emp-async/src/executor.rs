//! The executor: task storage, wakers, the doorbell park loop, and the
//! scoped process-context needed by leaf futures.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;
use simnet::emp_trace::telemetry::Gauge;
use simnet::emp_trace::Counter;
use simnet::engine::SimShared;
use simnet::{Completion, ProcessCtx, SimAccess, SimResult};

type TaskId = usize;

/// Engine handle reconstructed from inside a waker, where no `&Sim` or
/// `&ProcessCtx` exists: wakers fire from simulation code that already
/// holds the engine, so handing the shared state back is always legal.
struct EngineRef(Arc<SimShared>);

impl SimAccess for EngineRef {
    fn shared(&self) -> Arc<SimShared> {
        Arc::clone(&self.0)
    }
}

/// State a waker must reach: `Send + Sync` (the `Waker` contract), shared
/// between every task's waker and the executor.
struct ExecShared {
    /// Tasks woken but not yet polled — FIFO in wake order, deduplicated.
    /// Wake order is itself deterministic (wakes happen inside engine
    /// events), so this queue *is* the schedule.
    ready: Mutex<ReadyQueue>,
    /// The completion the executor parks on; replaced before every park.
    doorbell: Mutex<Completion>,
    /// Engine handle for completing the doorbell from waker context;
    /// installed by [`LocalExecutor::run`].
    sim: Mutex<Option<Arc<SimShared>>>,
    /// `exec.wakes` — every waker fire, including coalesced ones.
    wakes: Mutex<Option<Arc<Counter>>>,
}

#[derive(Default)]
struct ReadyQueue {
    q: VecDeque<TaskId>,
    queued: HashSet<TaskId>,
}

impl ExecShared {
    fn new() -> Arc<Self> {
        Arc::new(ExecShared {
            ready: Mutex::new(ReadyQueue::default()),
            doorbell: Mutex::new(Completion::new()),
            sim: Mutex::new(None),
            wakes: Mutex::new(None),
        })
    }

    /// Mark `task` ready and ring the doorbell. Callable from anywhere —
    /// waker context, spawn, the executor's own thread.
    fn enqueue(&self, task: TaskId) {
        {
            let mut r = self.ready.lock();
            if r.queued.insert(task) {
                r.q.push_back(task);
            }
        }
        if let Some(c) = self.wakes.lock().as_ref() {
            c.inc();
        }
        let bell = self.doorbell.lock().clone();
        if let Some(sim) = self.sim.lock().clone() {
            bell.complete(&EngineRef(sim));
        }
    }

    fn pop_ready(&self) -> Option<TaskId> {
        let mut r = self.ready.lock();
        let id = r.q.pop_front()?;
        r.queued.remove(&id);
        Some(id)
    }

    fn has_ready(&self) -> bool {
        !self.ready.lock().q.is_empty()
    }
}

/// One task's waker target.
struct TaskWaker {
    exec: Arc<ExecShared>,
    task: TaskId,
}

impl std::task::Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.exec.enqueue(self.task);
    }
}

struct Task {
    fut: Pin<Box<dyn Future<Output = ()>>>,
    /// One waker per task for its whole life, so `Waker::will_wake`
    /// dedups repeated registrations on long-lived completions.
    waker: Waker,
}

struct Inner {
    shared: Arc<ExecShared>,
    tasks: RefCell<BTreeMap<TaskId, Task>>,
    next: Cell<TaskId>,
    /// `exec.tasks_live`, once `run` has a registry.
    tasks_live: RefCell<Option<Arc<Gauge>>>,
}

/// A single-threaded executor owned by one simulated process. Tasks are
/// `!Send` futures; everything runs on the owning process's thread in
/// deterministic wake order.
pub struct LocalExecutor {
    inner: Rc<Inner>,
}

impl Default for LocalExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalExecutor {
    /// A fresh executor with no tasks.
    pub fn new() -> Self {
        LocalExecutor {
            inner: Rc::new(Inner {
                shared: ExecShared::new(),
                tasks: RefCell::new(BTreeMap::new()),
                next: Cell::new(0),
                tasks_live: RefCell::new(None),
            }),
        }
    }

    /// A cloneable handle for spawning from inside tasks.
    pub fn spawner(&self) -> Spawner {
        Spawner {
            inner: Rc::clone(&self.inner),
        }
    }

    /// Spawn a task; it is polled first during [`LocalExecutor::run`].
    /// The [`JoinHandle`] resolves to the task's output (awaiting it is
    /// optional — detached tasks run to completion regardless).
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.spawner().spawn(fut)
    }

    /// Drive every task to completion. Parks on the doorbell whenever no
    /// task is ready; wakers fired by simulation events un-park it. This
    /// is the executor's event loop — one call serves the process's whole
    /// async lifetime.
    pub fn run(&self, ctx: &ProcessCtx) -> SimResult<()> {
        let shared = &self.inner.shared;
        *shared.sim.lock() = Some(SimAccess::shared(ctx));
        let reg = ctx.telemetry();
        *shared.wakes.lock() = Some(reg.counter("exec.wakes"));
        let tasks_live = reg.gauge("exec.tasks_live");
        tasks_live.set(self.inner.tasks.borrow().len() as i64);
        *self.inner.tasks_live.borrow_mut() = Some(Arc::clone(&tasks_live));
        // Task polls per executor wake-up: the batch-size distribution —
        // 1 means a wake-per-poll regime, large values mean one event
        // readied many tasks.
        let poll_spins = reg.histogram("exec.poll_spins");
        loop {
            let mut spins: u64 = 0;
            while let Some(id) = shared.pop_ready() {
                spins += 1;
                self.poll_task(ctx, id);
            }
            if spins > 0 {
                poll_spins.record(spins);
            }
            if self.inner.tasks.borrow().is_empty() {
                return Ok(());
            }
            // Install a fresh doorbell *before* the final ready re-check:
            // any wake after the check completes the new doorbell, so the
            // park below cannot sleep through it (and under strict
            // alternation nothing even runs in between).
            let bell = Completion::new();
            *shared.doorbell.lock() = bell.clone();
            if shared.has_ready() {
                continue;
            }
            bell.wait(ctx)?;
        }
    }

    fn poll_task(&self, ctx: &ProcessCtx, id: TaskId) {
        // A stale wake for a finished task: nothing to do.
        let Some(mut task) = self.inner.tasks.borrow_mut().remove(&id) else {
            return;
        };
        let waker = task.waker.clone();
        let mut cx = Context::from_waker(&waker);
        let poll = {
            let _scope = CtxScope::enter(ctx);
            task.fut.as_mut().poll(&mut cx)
        };
        match poll {
            Poll::Pending => {
                self.inner.tasks.borrow_mut().insert(id, task);
            }
            Poll::Ready(()) => {
                // Drop the future with the context still installed so
                // drop-guards (cancellation) can reach the stack.
                let _scope = CtxScope::enter(ctx);
                drop(task);
                if let Some(g) = self.inner.tasks_live.borrow().as_ref() {
                    g.sub(1);
                }
            }
        }
    }
}

/// Spawns tasks onto a [`LocalExecutor`] from inside its tasks. `!Send`,
/// like everything task-side.
#[derive(Clone)]
pub struct Spawner {
    inner: Rc<Inner>,
}

impl Spawner {
    /// See [`LocalExecutor::spawn`].
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waiter: None,
        }));
        let st = Rc::clone(&state);
        let wrapped = async move {
            let out = fut.await;
            let waiter = {
                let mut s = st.borrow_mut();
                s.result = Some(out);
                s.waiter.take()
            };
            if let Some(w) = waiter {
                w.wake();
            }
        };
        let id = self.inner.next.get();
        self.inner.next.set(id + 1);
        let waker = Waker::from(Arc::new(TaskWaker {
            exec: Arc::clone(&self.inner.shared),
            task: id,
        }));
        self.inner.tasks.borrow_mut().insert(
            id,
            Task {
                fut: Box::pin(wrapped),
                waker,
            },
        );
        if let Some(g) = self.inner.tasks_live.borrow().as_ref() {
            g.add(1);
        }
        self.inner.shared.enqueue(id);
        JoinHandle { state }
    }
}

/// Extension for spawning when only a `&LocalExecutor` or `&Spawner` is
/// in scope generically.
pub trait SpawnHandleExt {
    /// Spawn `fut` onto the underlying executor.
    fn spawn_task<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static;
}

impl SpawnHandleExt for LocalExecutor {
    fn spawn_task<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.spawn(fut)
    }
}

impl SpawnHandleExt for Spawner {
    fn spawn_task<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.spawn(fut)
    }
}

struct JoinState<T> {
    result: Option<T>,
    waiter: Option<Waker>,
}

/// Awaits a spawned task's output. Dropping the handle detaches the task
/// (it still runs); it does not cancel it.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Take the output if the task has finished (useful after
    /// [`LocalExecutor::run`] returns, outside async context).
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        match st.result.take() {
            Some(v) => Poll::Ready(v),
            None => {
                st.waiter = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Create an executor, spawn `fut` as its only root task, and run the
/// executor to completion — the async `main` for one simulated process.
pub fn block_on<T, F>(ctx: &ProcessCtx, fut: F) -> SimResult<T>
where
    T: 'static,
    F: Future<Output = T> + 'static,
{
    let ex = LocalExecutor::new();
    let handle = ex.spawn(fut);
    ex.run(ctx)?;
    Ok(handle.try_take().expect("run drained every task"))
}

thread_local! {
    /// The process context of the executor currently polling a task on
    /// this thread (each simulated process is its own OS thread, so this
    /// nests correctly even with several executors in one simulation).
    static CTX: Cell<*const ProcessCtx> = const { Cell::new(std::ptr::null()) };
}

/// Installs a `&ProcessCtx` for the duration of one task poll (or drop),
/// restoring the previous value on exit.
struct CtxScope {
    prev: *const ProcessCtx,
}

impl CtxScope {
    fn enter(ctx: &ProcessCtx) -> CtxScope {
        let prev = CTX.with(|c| c.replace(ctx as *const ProcessCtx));
        CtxScope { prev }
    }
}

impl Drop for CtxScope {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// The process context of the enclosing executor — how leaf futures reach
/// the stack's nonblocking calls from inside `Future::poll`. Panics
/// outside a task poll; use [`try_with_ctx`] from drop guards that may
/// run after the executor is gone.
pub fn with_ctx<R>(f: impl FnOnce(&ProcessCtx) -> R) -> R {
    try_with_ctx(f).expect("with_ctx outside an executor task")
}

/// [`with_ctx`], returning `None` when no executor is polling on this
/// thread (e.g. a future dropped with its executor after `run`).
pub fn try_with_ctx<R>(f: impl FnOnce(&ProcessCtx) -> R) -> Option<R> {
    let p = CTX.with(|c| c.get());
    if p.is_null() {
        return None;
    }
    // SAFETY: `p` was installed by `CtxScope::enter` from a live
    // `&ProcessCtx` borrowed for the whole poll/drop call this closure
    // runs inside, on this same thread, and is cleared when that scope
    // unwinds — so the reference is valid for the duration of `f`.
    Some(f(unsafe { &*p }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sleep, wait_for, yield_now};
    use simnet::{Sim, SimAccessExt, SimDuration, SimTime};

    #[test]
    fn block_on_returns_root_value() {
        let sim = Sim::new();
        let out = Arc::new(Mutex::new(0u32));
        let o2 = Arc::clone(&out);
        sim.spawn("main", move |ctx| {
            let v = block_on(ctx, async { 6 * 7 })?;
            *o2.lock() = v;
            Ok(())
        });
        sim.run();
        assert_eq!(*out.lock(), 42);
    }

    #[test]
    fn tasks_interleave_and_join() {
        let sim = Sim::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o2 = Arc::clone(&order);
        sim.spawn("main", move |ctx| {
            let ex = LocalExecutor::new();
            let spawner = ex.spawner();
            let (oa, ob) = (Arc::clone(&o2), Arc::clone(&o2));
            let handle = ex.spawn(async move {
                oa.lock().push("a1");
                yield_now().await;
                oa.lock().push("a2");
                17u32
            });
            ex.spawn(async move {
                ob.lock().push("b1");
                let got = handle.await;
                ob.lock().push("b2");
                assert_eq!(got, 17);
            });
            // A late spawn from inside a task also runs.
            let o3 = Arc::clone(&o2);
            ex.spawn(async move {
                spawner
                    .spawn(async move {
                        o3.lock().push("c");
                    })
                    .await;
            });
            ex.run(ctx)
        });
        sim.run();
        assert_eq!(*order.lock(), vec!["a1", "b1", "a2", "c", "b2"]);
    }

    #[test]
    fn sim_events_wake_parked_executor() {
        let sim = Sim::new();
        let done = Completion::new();
        let woke_at = Arc::new(Mutex::new(None));
        let (d2, w2) = (done.clone(), Arc::clone(&woke_at));
        sim.spawn("main", move |ctx| {
            block_on(ctx, async move {
                wait_for(&d2).await;
                *w2.lock() = Some(with_ctx(|ctx| ctx.now()));
            })
        });
        let d3 = done.clone();
        sim.schedule_at(SimTime::from_nanos(250), move |s| d3.complete(s));
        sim.run();
        assert_eq!(*woke_at.lock(), Some(SimTime::from_nanos(250)));
    }

    #[test]
    fn sleeps_run_in_deadline_order_regardless_of_spawn_order() {
        let sim = Sim::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o2 = Arc::clone(&order);
        sim.spawn("main", move |ctx| {
            let ex = LocalExecutor::new();
            for (tag, ns) in [("slow", 300u64), ("fast", 100), ("mid", 200)] {
                let o = Arc::clone(&o2);
                ex.spawn(async move {
                    sleep(SimDuration::from_nanos(ns)).await;
                    o.lock().push((tag, with_ctx(|c| c.now().nanos())));
                });
            }
            ex.run(ctx)
        });
        sim.run();
        assert_eq!(
            *order.lock(),
            vec![("fast", 100), ("mid", 200), ("slow", 300)]
        );
    }

    #[test]
    fn spawn_blocking_round_trips_through_a_helper_process() {
        let sim = Sim::new();
        let got = Arc::new(Mutex::new(None));
        let g2 = Arc::clone(&got);
        sim.spawn("main", move |ctx| {
            block_on(ctx, async move {
                let v = crate::spawn_blocking("helper", |helper| {
                    helper.delay(SimDuration::from_nanos(40))?;
                    Ok(99u64)
                })
                .await
                .expect("helper ran");
                *g2.lock() = Some((v, with_ctx(|c| c.now().nanos())));
            })
        });
        sim.run();
        assert_eq!(*got.lock(), Some((99, 40)));
    }

    #[test]
    fn executor_telemetry_registers_and_counts() {
        let sim = Sim::new();
        sim.spawn("main", move |ctx| {
            let reg = ctx.telemetry();
            block_on(ctx, async {
                sleep(SimDuration::from_nanos(10)).await;
            })?;
            assert!(reg.counter("exec.wakes").get() > 0);
            assert_eq!(reg.gauge("exec.tasks_live").get(), 0);
            Ok(())
        });
        sim.run();
    }
}
