//! Simulated-time timers: futures that resolve at an absolute instant,
//! scheduled as ordinary engine events (never a wall clock).

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use simnet::{Completion, SimAccess, SimAccessExt, SimDuration, SimTime};

use crate::executor::with_ctx;

/// Resolves at `deadline` (immediately if it already passed). The
/// deadline/cancellation building block: `select`-style raced against an
/// I/O future, or awaited alone as a pure sleep.
pub fn sleep_until(deadline: SimTime) -> Sleep {
    Sleep {
        deadline: Some(deadline),
        dur: None,
        timer: None,
    }
}

/// Resolves `dur` after the first poll (the async analogue of
/// [`simnet::ProcessCtx::delay`], but only this task sleeps).
pub fn sleep(dur: SimDuration) -> Sleep {
    Sleep {
        deadline: None,
        dur: Some(dur),
        timer: None,
    }
}

/// Future returned by [`sleep`] / [`sleep_until`].
///
/// Dropping it cancels the wake (the scheduled engine event still runs,
/// completing a timer nobody watches — a no-op).
pub struct Sleep {
    deadline: Option<SimTime>,
    dur: Option<SimDuration>,
    timer: Option<Completion>,
}

impl Sleep {
    /// The absolute instant this sleep resolves at, once known (a
    /// relative [`sleep`] resolves it on first poll).
    pub fn deadline(&self) -> Option<SimTime> {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        with_ctx(|ctx| {
            let dur = this.dur;
            let deadline = *this
                .deadline
                .get_or_insert_with(|| ctx.now() + dur.expect("sleep has a duration"));
            if ctx.now() >= deadline {
                return Poll::Ready(());
            }
            let timer = this.timer.get_or_insert_with(|| {
                let c = Completion::new();
                let c2 = c.clone();
                ctx.schedule_at(deadline, move |s| c2.complete(s));
                c
            });
            if timer.watch_waker(cx.waker()) {
                Poll::Pending
            } else {
                Poll::Ready(())
            }
        })
    }
}
