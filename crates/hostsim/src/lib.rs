//! # hostsim — host-side models for the simulated testbed
//!
//! The paper's testbed hosts are Pentium III 700 MHz quads running Linux
//! 2.4.18. This crate models everything about them that the evaluation's
//! numbers depend on:
//!
//! * [`CostModel`] — one named constant per host-side cost (syscalls,
//!   context switches, interrupts, memcpy bandwidth, doorbell writes,
//!   thread synchronization, scheduler granularity);
//! * [`MemoryRegistry`] — page pinning + translation cache, EMP's
//!   single-syscall registration path (paper §2);
//! * [`RamDisk`] — the RAM-disk filesystem behind the ftp experiment and
//!   its "file system overhead" (paper §7.3);
//! * [`Host`] — one machine bundling the above.

#![warn(missing_docs)]

pub mod cost;
pub mod fs;
pub mod host;
pub mod memory;

pub use cost::CostModel;
pub use fs::{FileHandle, FsConfig, FsError, RamDisk};
pub use host::Host;
pub use memory::{MemoryRegistry, PinOutcome, VirtRange, PAGE_SIZE};
