//! Pinned-memory registry with a translation cache.
//!
//! EMP requires every buffer the NIC touches to be pinned and translated to
//! physical addresses; host and NIC cooperate through *one* system call per
//! region, and a user-space translation cache makes repeat registrations
//! free of kernel entries (paper §2). This module models exactly that: the
//! first registration of a page range costs a pin+translate syscall, later
//! registrations of covered pages cost a cache hit.

use std::collections::BTreeMap;

use simnet::SimDuration;

use crate::cost::CostModel;

/// Page size of the simulated host (i686 Linux).
pub const PAGE_SIZE: u64 = 4096;

/// A virtual address range in some process's address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VirtRange {
    /// Start address (arbitrary but consistent per buffer).
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
}

impl VirtRange {
    /// The range `[addr, addr+len)`.
    pub fn new(addr: u64, len: u64) -> Self {
        VirtRange { addr, len }
    }

    fn first_page(&self) -> u64 {
        self.addr / PAGE_SIZE
    }

    fn last_page(&self) -> u64 {
        if self.len == 0 {
            self.first_page()
        } else {
            (self.addr + self.len - 1) / PAGE_SIZE
        }
    }

    /// Number of pages the range touches.
    pub fn pages(&self) -> u64 {
        self.last_page() - self.first_page() + 1
    }
}

/// Outcome of a registration, for instrumentation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinOutcome {
    /// All pages already pinned; served from the translation cache.
    CacheHit,
    /// At least one page needed the pin+translate system call.
    CacheMiss {
        /// Pages newly pinned by this call.
        new_pages: u64,
    },
}

/// Per-process registry of pinned pages.
///
/// Not thread-safe by itself; wrap in a mutex (or keep per-process, as the
/// substrate does).
#[derive(Debug, Default)]
pub struct MemoryRegistry {
    /// Pinned page-number intervals, keyed by first page, non-overlapping.
    pinned: BTreeMap<u64, u64>, // first_page -> last_page (inclusive)
    hits: u64,
    misses: u64,
    pinned_pages: u64,
}

impl MemoryRegistry {
    /// An empty registry (no pages pinned).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `range` for NIC access. Returns the time the registration
    /// costs under `cost` and what happened.
    pub fn register(&mut self, range: VirtRange, cost: &CostModel) -> (SimDuration, PinOutcome) {
        let (first, last) = (range.first_page(), range.last_page());
        let missing = self.missing_pages(first, last);
        if missing == 0 {
            self.hits += 1;
            (cost.translation_cache_hit, PinOutcome::CacheHit)
        } else {
            self.misses += 1;
            self.pin(first, last);
            self.pinned_pages += missing;
            // One combined syscall regardless of page count, plus a small
            // per-page table-walk cost inside the kernel.
            let per_page = SimDuration::from_nanos(200) * missing;
            (
                cost.pin_translate_syscall + per_page,
                PinOutcome::CacheMiss { new_pages: missing },
            )
        }
    }

    /// True if every page of `range` is currently pinned.
    pub fn is_pinned(&self, range: VirtRange) -> bool {
        self.missing_pages(range.first_page(), range.last_page()) == 0
    }

    /// Translation-cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.hits
    }

    /// Translation-cache misses (pin syscalls) so far.
    pub fn cache_misses(&self) -> u64 {
        self.misses
    }

    /// Total pages currently pinned.
    pub fn pinned_pages(&self) -> u64 {
        self.pinned_pages
    }

    /// Unpin everything (process teardown; EMP resets state per
    /// application, paper §5.3).
    pub fn unpin_all(&mut self) {
        self.pinned.clear();
        self.pinned_pages = 0;
    }

    fn missing_pages(&self, first: u64, last: u64) -> u64 {
        let mut missing = last - first + 1;
        // Intervals that could overlap: start at or before `last`.
        for (&lo, &hi) in self.pinned.range(..=last) {
            if hi < first {
                continue;
            }
            let ov_lo = lo.max(first);
            let ov_hi = hi.min(last);
            missing -= ov_hi - ov_lo + 1;
        }
        missing
    }

    fn pin(&mut self, first: u64, last: u64) {
        // Merge with any overlapping or adjacent intervals.
        let mut lo = first;
        let mut hi = last;
        let overlapping: Vec<u64> = self
            .pinned
            .range(..=last.saturating_add(1))
            .filter(|&(_, &h)| h.saturating_add(1) >= first)
            .map(|(&l, _)| l)
            .collect();
        for l in overlapping {
            let h = self.pinned.remove(&l).expect("key just observed");
            lo = lo.min(l);
            hi = hi.max(h);
        }
        self.pinned.insert(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn first_registration_misses_then_hits() {
        let mut reg = MemoryRegistry::new();
        let range = VirtRange::new(0x10000, 8192);
        let (cost1, out1) = reg.register(range, &cm());
        assert_eq!(out1, PinOutcome::CacheMiss { new_pages: 2 });
        let (cost2, out2) = reg.register(range, &cm());
        assert_eq!(out2, PinOutcome::CacheHit);
        assert!(cost1 > cost2, "miss must cost more than hit");
        assert_eq!(reg.cache_hits(), 1);
        assert_eq!(reg.cache_misses(), 1);
        assert_eq!(reg.pinned_pages(), 2);
    }

    #[test]
    fn subrange_of_pinned_region_hits() {
        let mut reg = MemoryRegistry::new();
        reg.register(VirtRange::new(0, 64 * 1024), &cm());
        let (_, out) = reg.register(VirtRange::new(4096, 100), &cm());
        assert_eq!(out, PinOutcome::CacheHit);
        assert!(reg.is_pinned(VirtRange::new(0, 64 * 1024)));
    }

    #[test]
    fn partial_overlap_pins_only_missing_pages() {
        let mut reg = MemoryRegistry::new();
        reg.register(VirtRange::new(0, 4096), &cm()); // page 0
        let (_, out) = reg.register(VirtRange::new(0, 3 * 4096), &cm()); // pages 0-2
        assert_eq!(out, PinOutcome::CacheMiss { new_pages: 2 });
        assert_eq!(reg.pinned_pages(), 3);
    }

    #[test]
    fn unaligned_range_spans_extra_page() {
        let r = VirtRange::new(4095, 2);
        assert_eq!(r.pages(), 2); // straddles pages 0 and 1
        let r = VirtRange::new(4096, 4096);
        assert_eq!(r.pages(), 1);
        let r = VirtRange::new(100, 0);
        assert_eq!(r.pages(), 1);
    }

    #[test]
    fn intervals_merge() {
        let mut reg = MemoryRegistry::new();
        reg.register(VirtRange::new(0, 4096), &cm()); // page 0
        reg.register(VirtRange::new(2 * 4096, 4096), &cm()); // page 2
        reg.register(VirtRange::new(4096, 4096), &cm()); // page 1 joins them
        assert_eq!(reg.pinned_pages(), 3);
        assert!(reg.is_pinned(VirtRange::new(0, 3 * 4096)));
        // Internally a single interval now.
        assert_eq!(reg.pinned.len(), 1);
    }

    #[test]
    fn unpin_all_resets() {
        let mut reg = MemoryRegistry::new();
        reg.register(VirtRange::new(0, 4096), &cm());
        reg.unpin_all();
        assert_eq!(reg.pinned_pages(), 0);
        assert!(!reg.is_pinned(VirtRange::new(0, 1)));
        let (_, out) = reg.register(VirtRange::new(0, 4096), &cm());
        assert!(matches!(out, PinOutcome::CacheMiss { .. }));
    }
}
