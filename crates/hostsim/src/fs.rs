//! A RAM-disk filesystem.
//!
//! The paper's ftp experiment (§7.3) serves files from RAM disks "to remove
//! the effects of disk access and caching", and explicitly attributes the
//! gap between ftp throughput and the raw socket bandwidth to "the File
//! System overhead". This module models that overhead: each read/write pays
//! a VFS/syscall entry plus a copy through the (modest, PIII-era) RAM-disk
//! bandwidth.
//!
//! Methods that move data take a [`ProcessCtx`] and consume simulated time
//! directly, so application code reads like ordinary blocking file I/O.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use simnet::{ProcessCtx, SimAccess, SimDuration, SimResult};

/// Filesystem timing parameters.
#[derive(Clone, Debug)]
pub struct FsConfig {
    /// Fixed cost per filesystem call (syscall entry + VFS path).
    pub call_overhead: SimDuration,
    /// Sustained RAM-disk copy bandwidth, bytes per second. This is the
    /// "file system overhead" knob: ~110 MB/s makes the simulated ftp land
    /// at roughly half the raw socket bandwidth, as in Figure 14.
    pub bytes_per_sec: u64,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig {
            call_overhead: SimDuration::from_micros(3),
            bytes_per_sec: 110_000_000,
        }
    }
}

/// A file descriptor into a [`RamDisk`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FileHandle(pub u32);

#[derive(Debug)]
struct OpenFile {
    path: String,
    offset: usize,
}

#[derive(Default)]
struct FsState {
    files: BTreeMap<String, Bytes>,
    open: BTreeMap<u32, OpenFile>,
    next_fd: u32,
}

/// Filesystem errors (a small errno subset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound,
    /// File handle is not open.
    BadHandle,
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file"),
            FsError::BadHandle => write!(f, "bad file handle"),
        }
    }
}

impl std::error::Error for FsError {}

/// The RAM disk of one host. Clone-able handle; state is shared.
#[derive(Clone)]
pub struct RamDisk {
    cfg: FsConfig,
    state: Arc<Mutex<FsState>>,
}

impl RamDisk {
    /// An empty RAM disk.
    pub fn new(cfg: FsConfig) -> Self {
        RamDisk {
            cfg,
            state: Arc::new(Mutex::new(FsState::default())),
        }
    }

    /// Instantly create `path` with the given contents (test/benchmark
    /// setup; consumes no simulated time).
    pub fn put(&self, path: impl Into<String>, data: impl Into<Bytes>) {
        self.state.lock().files.insert(path.into(), data.into());
    }

    /// Create `path` filled with `len` deterministic bytes (setup helper).
    pub fn put_synthetic(&self, path: impl Into<String>, len: usize) {
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        self.put(path, data);
    }

    /// File size without opening (stat-like; costs one call overhead).
    pub fn len_of(&self, ctx: &ProcessCtx, path: &str) -> SimResult<Result<usize, FsError>> {
        ctx.delay(self.cfg.call_overhead)?;
        Ok(self
            .state
            .lock()
            .files
            .get(path)
            .map(|d| d.len())
            .ok_or(FsError::NotFound))
    }

    /// True if `path` exists (no simulated cost; metadata convenience).
    pub fn exists(&self, path: &str) -> bool {
        self.state.lock().files.contains_key(path)
    }

    /// List all paths (no simulated cost; used by the ftp server's LIST).
    pub fn list(&self) -> Vec<String> {
        self.state.lock().files.keys().cloned().collect()
    }

    /// Open an existing file for reading/writing at offset 0.
    pub fn open(&self, ctx: &ProcessCtx, path: &str) -> SimResult<Result<FileHandle, FsError>> {
        ctx.delay(self.cfg.call_overhead)?;
        let mut st = self.state.lock();
        if !st.files.contains_key(path) {
            return Ok(Err(FsError::NotFound));
        }
        let fd = st.next_fd;
        st.next_fd += 1;
        st.open.insert(
            fd,
            OpenFile {
                path: path.to_string(),
                offset: 0,
            },
        );
        Ok(Ok(FileHandle(fd)))
    }

    /// Create (or truncate) a file and open it for writing.
    pub fn create(&self, ctx: &ProcessCtx, path: &str) -> SimResult<FileHandle> {
        ctx.delay(self.cfg.call_overhead)?;
        let mut st = self.state.lock();
        st.files.insert(path.to_string(), Bytes::new());
        let fd = st.next_fd;
        st.next_fd += 1;
        st.open.insert(
            fd,
            OpenFile {
                path: path.to_string(),
                offset: 0,
            },
        );
        Ok(FileHandle(fd))
    }

    /// Read up to `len` bytes at the current offset, advancing it. An empty
    /// result means end-of-file. Consumes call overhead + copy time.
    pub fn read(
        &self,
        ctx: &ProcessCtx,
        fd: FileHandle,
        len: usize,
    ) -> SimResult<Result<Bytes, FsError>> {
        let chunk = {
            let mut st = self.state.lock();
            let Some(of) = st.open.get(&fd.0) else {
                drop(st);
                ctx.delay(self.cfg.call_overhead)?;
                return Ok(Err(FsError::BadHandle));
            };
            let path = of.path.clone();
            let offset = of.offset;
            let data = st.files.get(&path).cloned().unwrap_or_default();
            let end = (offset + len).min(data.len());
            let chunk = data.slice(offset.min(data.len())..end);
            st.open.get_mut(&fd.0).expect("checked above").offset = end;
            chunk
        };
        ctx.delay(
            self.cfg.call_overhead
                + SimDuration::for_bytes_at_rate(chunk.len() as u64, self.cfg.bytes_per_sec),
        )?;
        ctx.telemetry()
            .counter("fs.bytes_read")
            .add(chunk.len() as u64);
        Ok(Ok(chunk))
    }

    /// Append `data` at the current offset (simple append-only write model:
    /// offsets always end up at the end of what was written).
    pub fn write(
        &self,
        ctx: &ProcessCtx,
        fd: FileHandle,
        data: &[u8],
    ) -> SimResult<Result<usize, FsError>> {
        {
            let mut st = self.state.lock();
            let Some(of) = st.open.get_mut(&fd.0) else {
                drop(st);
                ctx.delay(self.cfg.call_overhead)?;
                return Ok(Err(FsError::BadHandle));
            };
            let path = of.path.clone();
            let offset = of.offset;
            let entry = st.files.entry(path).or_default();
            let mut buf = entry.to_vec();
            if buf.len() < offset {
                buf.resize(offset, 0);
            }
            buf.truncate(offset);
            buf.extend_from_slice(data);
            *entry = Bytes::from(buf);
            st.open.get_mut(&fd.0).expect("checked above").offset = offset + data.len();
        }
        ctx.delay(
            self.cfg.call_overhead
                + SimDuration::for_bytes_at_rate(data.len() as u64, self.cfg.bytes_per_sec),
        )?;
        ctx.telemetry()
            .counter("fs.bytes_written")
            .add(data.len() as u64);
        Ok(Ok(data.len()))
    }

    /// Close a handle (costs one call overhead).
    pub fn close(&self, ctx: &ProcessCtx, fd: FileHandle) -> SimResult<Result<(), FsError>> {
        ctx.delay(self.cfg.call_overhead)?;
        match self.state.lock().open.remove(&fd.0) {
            Some(_) => Ok(Ok(())),
            None => Ok(Err(FsError::BadHandle)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Sim, SimAccess};

    fn disk() -> RamDisk {
        RamDisk::new(FsConfig::default())
    }

    #[test]
    fn read_roundtrip_with_costs() {
        let sim = Sim::new();
        let fs = disk();
        fs.put("a.txt", &b"hello world"[..]);
        let fs2 = fs.clone();
        sim.spawn("reader", move |ctx| {
            let fd = fs2.open(ctx, "a.txt")?.expect("file exists");
            let t0 = ctx.now();
            let chunk = fs2.read(ctx, fd, 5)?.expect("read");
            assert_eq!(&chunk[..], b"hello");
            assert!(ctx.now() > t0, "read must consume simulated time");
            let rest = fs2.read(ctx, fd, 100)?.expect("read");
            assert_eq!(&rest[..], b" world");
            let eof = fs2.read(ctx, fd, 100)?.expect("read");
            assert!(eof.is_empty());
            fs2.close(ctx, fd)?.expect("close");
            Ok(())
        });
        sim.run();
    }

    #[test]
    fn write_then_read_back() {
        let sim = Sim::new();
        let fs = disk();
        let fs2 = fs.clone();
        sim.spawn("writer", move |ctx| {
            let fd = fs2.create(ctx, "out.bin")?;
            fs2.write(ctx, fd, b"abc")?.expect("write");
            fs2.write(ctx, fd, b"def")?.expect("write");
            fs2.close(ctx, fd)?.expect("close");
            let fd = fs2.open(ctx, "out.bin")?.expect("exists");
            let all = fs2.read(ctx, fd, 100)?.expect("read");
            assert_eq!(&all[..], b"abcdef");
            Ok(())
        });
        sim.run();
        assert!(fs.exists("out.bin"));
    }

    #[test]
    fn missing_file_errors() {
        let sim = Sim::new();
        let fs = disk();
        let fs2 = fs.clone();
        sim.spawn("p", move |ctx| {
            assert_eq!(fs2.open(ctx, "nope")?, Err(FsError::NotFound));
            assert_eq!(fs2.len_of(ctx, "nope")?, Err(FsError::NotFound));
            assert_eq!(fs2.read(ctx, FileHandle(99), 1)?, Err(FsError::BadHandle));
            assert_eq!(fs2.close(ctx, FileHandle(99))?, Err(FsError::BadHandle));
            Ok(())
        });
        sim.run();
    }

    #[test]
    fn large_read_takes_proportional_time() {
        let sim = Sim::new();
        let fs = RamDisk::new(FsConfig {
            call_overhead: SimDuration::ZERO,
            bytes_per_sec: 1_000_000,
        });
        fs.put_synthetic("big", 1_000_000);
        let fs2 = fs.clone();
        sim.spawn("p", move |ctx| {
            let fd = fs2.open(ctx, "big")?.expect("exists");
            let t0 = ctx.now();
            let data = fs2.read(ctx, fd, 1_000_000)?.expect("read");
            assert_eq!(data.len(), 1_000_000);
            // 1 MB at 1 MB/s = 1 simulated second.
            assert_eq!((ctx.now() - t0), SimDuration::from_secs(1));
            Ok(())
        });
        sim.run();
    }

    #[test]
    fn synthetic_contents_are_deterministic() {
        let fs = disk();
        fs.put_synthetic("x", 512);
        fs.put_synthetic("y", 512);
        let sx = fs.state.lock().files.get("x").cloned().unwrap();
        let sy = fs.state.lock().files.get("y").cloned().unwrap();
        assert_eq!(sx, sy);
        assert_eq!(sx[0], 0);
        assert_eq!(sx[250], 250);
        assert_eq!(sx[251], 0);
    }
}
