//! A host: one machine of the simulated cluster.
//!
//! Bundles the pieces every protocol stack needs — identity, cost model,
//! pinned-memory registry and RAM disk. NIC attachment is done by the
//! protocol crates (`tigon-nic` for EMP, `kernel-tcp` for the baseline),
//! which keep their own per-host state keyed by [`Host::id`].

use std::sync::Arc;

use parking_lot::Mutex;
use simnet::MacAddr;

use crate::cost::CostModel;
use crate::fs::{FsConfig, RamDisk};
use crate::memory::MemoryRegistry;

/// One machine: identity + cost model + memory + filesystem.
#[derive(Clone)]
pub struct Host {
    inner: Arc<HostInner>,
}

struct HostInner {
    id: MacAddr,
    cost: CostModel,
    memory: Mutex<MemoryRegistry>,
    fs: RamDisk,
}

impl Host {
    /// Build a host with the given station id and default cost/fs models.
    pub fn new(id: MacAddr) -> Self {
        Self::with_models(id, CostModel::default(), FsConfig::default())
    }

    /// Build a host with explicit models.
    pub fn with_models(id: MacAddr, cost: CostModel, fs_cfg: FsConfig) -> Self {
        Host {
            inner: Arc::new(HostInner {
                id,
                cost,
                memory: Mutex::new(MemoryRegistry::new()),
                fs: RamDisk::new(fs_cfg),
            }),
        }
    }

    /// Station id (MAC / EMP source index).
    pub fn id(&self) -> MacAddr {
        self.inner.id
    }

    /// The host's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.inner.cost
    }

    /// The pinned-memory registry (lock to use).
    pub fn memory(&self) -> &Mutex<MemoryRegistry> {
        &self.inner.memory
    }

    /// The host's RAM disk.
    pub fn fs(&self) -> &RamDisk {
        &self.inner.fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::VirtRange;

    #[test]
    fn host_bundles_components() {
        let h = Host::new(MacAddr(3));
        assert_eq!(h.id(), MacAddr(3));
        h.fs().put("f", &b"x"[..]);
        assert!(h.fs().exists("f"));
        let (d1, _) = h
            .memory()
            .lock()
            .register(VirtRange::new(0, 4096), h.cost());
        let (d2, _) = h
            .memory()
            .lock()
            .register(VirtRange::new(0, 4096), h.cost());
        assert!(d1 > d2);
    }

    #[test]
    fn clones_share_state() {
        let h = Host::new(MacAddr(1));
        let h2 = h.clone();
        h.fs().put("shared", &b"y"[..]);
        assert!(h2.fs().exists("shared"));
    }
}
