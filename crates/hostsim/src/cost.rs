//! The host cost model.
//!
//! One place for every host-side time constant in the simulated testbed —
//! a Pentium III 700 MHz quad running Linux 2.4.18, per the paper's §7.
//! Each constant is documented with its calibration rationale; the
//! end-to-end numbers they must reproduce are listed in `DESIGN.md` §4.

use simnet::SimDuration;

/// Host-side cost constants. All methods return simulated durations.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Bare system-call entry/exit (trap, register save, return). Linux 2.4
    /// on a PIII 700 measured ~0.6-1 µs for getpid-class calls.
    pub syscall: SimDuration,
    /// Full process context switch (scheduler + MMU switch + cache damage).
    pub context_switch: SimDuration,
    /// Hardware interrupt entry + handler dispatch + bottom-half scheduling;
    /// paid once per NIC interrupt in the kernel baseline.
    pub interrupt: SimDuration,
    /// Per-call fixed overhead of a memory copy (function call, cache-line
    /// alignment preamble).
    pub memcpy_setup: SimDuration,
    /// Streaming copy bandwidth of the host (bytes/s). PIII-era copies
    /// through the cache sustained on the order of 800 MB/s.
    pub memcpy_bytes_per_sec: u64,
    /// The EMP combined pin-and-translate system call, paid on a
    /// translation-cache miss (§2 of the paper: "We do both operations in a
    /// single system call").
    pub pin_translate_syscall: SimDuration,
    /// Translation-cache hit: a user-space hash lookup.
    pub translation_cache_hit: SimDuration,
    /// Uncached PCI write posting a doorbell/mailbox to the NIC.
    pub doorbell_write: SimDuration,
    /// One user-space poll of a completion flag in host memory.
    pub poll_completion: SimDuration,
    /// Synchronization cost between two host threads (the paper measures
    /// ~20 µs for the polling-threads alternative of §5.2).
    pub thread_sync: SimDuration,
    /// Scheduling granularity for a *blocking* thread: Linux 2.4 ran with
    /// HZ=100, so a blocked thread resumes on a ~10 ms tick boundary
    /// (paper §5.2: "order of milliseconds").
    pub scheduler_granularity: SimDuration,
    /// Waking a process blocked in the kernel (run-queue insertion +
    /// dispatch latency, excluding the context switch itself).
    pub process_wakeup: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            syscall: SimDuration::from_nanos(700),
            context_switch: SimDuration::from_micros(5),
            interrupt: SimDuration::from_micros(8),
            memcpy_setup: SimDuration::from_nanos(150),
            memcpy_bytes_per_sec: 800_000_000,
            pin_translate_syscall: SimDuration::from_micros_f64(2.5),
            translation_cache_hit: SimDuration::from_nanos(100),
            doorbell_write: SimDuration::from_nanos(700),
            poll_completion: SimDuration::from_nanos(300),
            thread_sync: SimDuration::from_micros(20),
            scheduler_granularity: SimDuration::from_millis(10),
            process_wakeup: SimDuration::from_micros(5),
        }
    }
}

impl CostModel {
    /// Time to copy `bytes` between two host buffers.
    pub fn memcpy(&self, bytes: usize) -> SimDuration {
        self.memcpy_setup + SimDuration::for_bytes_at_rate(bytes as u64, self.memcpy_bytes_per_sec)
    }

    /// Time for a system call that also copies `bytes` across the
    /// user/kernel boundary (e.g. `read`/`write` on a kernel socket).
    pub fn syscall_with_copy(&self, bytes: usize) -> SimDuration {
        self.syscall + self.memcpy(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcpy_scales_linearly() {
        let c = CostModel::default();
        let small = c.memcpy(0);
        assert_eq!(small, c.memcpy_setup);
        // 800 MB/s => 1 byte per 1.25 ns; 8000 bytes = 10 us + setup.
        let big = c.memcpy(8_000);
        assert_eq!(big, c.memcpy_setup + SimDuration::from_micros(10));
    }

    #[test]
    fn syscall_with_copy_combines() {
        let c = CostModel::default();
        assert_eq!(c.syscall_with_copy(0), c.syscall + c.memcpy_setup);
        assert!(c.syscall_with_copy(1500) > c.syscall_with_copy(4));
    }

    #[test]
    fn defaults_reflect_paper_constants() {
        let c = CostModel::default();
        // The two constants quoted directly in the paper:
        assert_eq!(c.thread_sync, SimDuration::from_micros(20));
        assert_eq!(c.scheduler_granularity, SimDuration::from_millis(10));
    }
}
