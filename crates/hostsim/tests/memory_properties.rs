//! Property tests of the pinned-memory registry against a naive
//! page-set model: the interval-merging implementation must agree with a
//! `HashSet<u64>` of pinned pages on every observable.

use hostsim::{CostModel, MemoryRegistry, PinOutcome, VirtRange, PAGE_SIZE};
use proptest::prelude::*;
use std::collections::HashSet;

fn pages_of(addr: u64, len: u64) -> impl Iterator<Item = u64> {
    let first = addr / PAGE_SIZE;
    let last = if len == 0 {
        first
    } else {
        (addr + len - 1) / PAGE_SIZE
    };
    first..=last
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn registry_agrees_with_naive_page_set(
        ops in prop::collection::vec((0u64..500_000, 1u64..60_000), 1..60)
    ) {
        let cost = CostModel::default();
        let mut reg = MemoryRegistry::new();
        let mut model: HashSet<u64> = HashSet::new();
        for (addr, len) in &ops {
            let range = VirtRange::new(*addr, *len);
            let covered = pages_of(*addr, *len).all(|p| model.contains(&p));
            let (_, outcome) = reg.register(range, &cost);
            match outcome {
                PinOutcome::CacheHit => prop_assert!(covered, "hit but model says miss"),
                PinOutcome::CacheMiss { new_pages } => {
                    let missing = pages_of(*addr, *len)
                        .filter(|p| !model.contains(p))
                        .count() as u64;
                    prop_assert_eq!(new_pages, missing, "miss page count");
                    prop_assert!(missing > 0);
                }
            }
            model.extend(pages_of(*addr, *len));
            prop_assert_eq!(reg.pinned_pages(), model.len() as u64);
            prop_assert!(reg.is_pinned(range));
        }
        // Spot-check random coverage queries.
        for (addr, len) in ops.iter().take(10) {
            let probe = VirtRange::new(addr + 7, (*len).min(123));
            let expect = pages_of(addr + 7, (*len).min(123)).all(|p| model.contains(&p));
            prop_assert_eq!(reg.is_pinned(probe), expect);
        }
    }

    #[test]
    fn unpin_all_resets_to_empty(
        ops in prop::collection::vec((0u64..100_000, 1u64..10_000), 1..20)
    ) {
        let cost = CostModel::default();
        let mut reg = MemoryRegistry::new();
        for (addr, len) in &ops {
            reg.register(VirtRange::new(*addr, *len), &cost);
        }
        reg.unpin_all();
        prop_assert_eq!(reg.pinned_pages(), 0);
        for (addr, len) in &ops {
            prop_assert!(!reg.is_pinned(VirtRange::new(*addr, *len)));
        }
    }

    #[test]
    fn registration_cost_is_monotone_in_new_pages(
        addr in 0u64..1_000_000,
        small in 1u64..4_000,
        big in 100_000u64..400_000,
    ) {
        let cost = CostModel::default();
        let mut reg_small = MemoryRegistry::new();
        let mut reg_big = MemoryRegistry::new();
        let (c_small, _) = reg_small.register(VirtRange::new(addr, small), &cost);
        let (c_big, _) = reg_big.register(VirtRange::new(addr, big), &cost);
        prop_assert!(c_big > c_small, "more pages cost more to pin");
    }
}
