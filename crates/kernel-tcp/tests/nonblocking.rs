//! The kernel baseline's nonblocking surface: `try_*` calls returning
//! [`TcpError::WouldBlock`] and `poll()` over mixed sockets, mirroring the
//! substrate's readiness layer so the facade can drive either stack from
//! one event loop.

use kernel_tcp::{
    build_tcp_cluster, Interest, SockAddr, TcpCluster, TcpConfig, TcpError, TcpPollSource,
    TcpPollTarget,
};
use simnet::{Completion, Sim, SimAccess, SimDuration, SwitchConfig};

fn cluster(n: usize) -> TcpCluster {
    build_tcp_cluster(n, TcpConfig::default(), SwitchConfig::default())
}

#[test]
fn try_read_would_block_until_poll_reports_readable() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server_addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    let api_s = cl.nodes[1].api();
    sim.spawn("server", move |ctx| {
        let l = api_s.listen(ctx, 80, 8)?.expect("port free");
        let conn = l.accept(ctx)?;
        assert_eq!(conn.try_read(ctx, 64)?.unwrap_err(), TcpError::WouldBlock);
        let sources = [TcpPollSource {
            target: TcpPollTarget::Conn(&conn),
            token: 5,
            interest: Interest::READABLE,
        }];
        let events = api_s.poll(ctx, &sources, None)?.expect("poll");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 5);
        assert!(events[0].is_readable());
        let d = conn.try_read(ctx, 64)?.expect("ready data");
        assert_eq!(&d[..], b"late");
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    let api_c = cl.nodes[0].api();
    sim.spawn("client", move |ctx| {
        let conn = api_c.connect(ctx, server_addr)?.expect("accepted");
        ctx.delay(SimDuration::from_millis(1))?;
        conn.write(ctx, b"late")?.expect("send");
        ctx.delay(SimDuration::from_millis(2))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn try_write_would_block_when_the_send_buffer_fills() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server_addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    let api_s = cl.nodes[1].api();
    sim.spawn("server", move |ctx| {
        let l = api_s.listen(ctx, 80, 8)?.expect("port free");
        let conn = l.accept(ctx)?;
        // Let the client saturate both buffers before draining.
        ctx.delay(SimDuration::from_millis(5))?;
        loop {
            let chunk = conn.read(ctx, 65536)?.expect("drain");
            if chunk.is_empty() {
                break;
            }
        }
        conn.close(ctx)?;
        Ok(())
    });
    let api_c = cl.nodes[0].api();
    sim.spawn("client", move |ctx| {
        let conn = api_c.connect(ctx, server_addr)?.expect("accepted");
        let chunk = vec![0xa5u8; 8192];
        // The server is asleep: the send buffer (and the peer's receive
        // window) must fill within a bounded number of writes.
        let mut stalled = false;
        for _ in 0..64 {
            match conn.try_write(ctx, &chunk)? {
                Ok(n) => assert!(n >= 1),
                Err(TcpError::WouldBlock) => {
                    stalled = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(stalled, "the send path must exert backpressure");
        assert!(!conn.writable());
        let sources = [TcpPollSource {
            target: TcpPollTarget::Conn(&conn),
            token: 1,
            interest: Interest::WRITABLE,
        }];
        let events = api_c.poll(ctx, &sources, None)?.expect("poll");
        assert!(events[0].is_writable());
        assert!(conn.writable());
        assert!(conn.try_write(ctx, &chunk)?.expect("space again") >= 1);
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn try_accept_would_block_until_poll_reports_acceptable() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server_addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    let api_s = cl.nodes[1].api();
    sim.spawn("server", move |ctx| {
        let l = api_s.listen(ctx, 80, 8)?.expect("port free");
        assert!(matches!(l.try_accept(ctx)?, Err(TcpError::WouldBlock)));
        let sources = [TcpPollSource {
            target: TcpPollTarget::Listener(&l),
            token: 2,
            interest: Interest::ACCEPTABLE,
        }];
        let events = api_s.poll(ctx, &sources, None)?.expect("poll");
        assert!(events[0].is_acceptable());
        let conn = l.try_accept(ctx)?.expect("queued connection");
        let d = conn.read(ctx, 64)?.expect("hello");
        assert_eq!(&d[..], b"hi");
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    let api_c = cl.nodes[0].api();
    sim.spawn("client", move |ctx| {
        ctx.delay(SimDuration::from_millis(1))?;
        let conn = api_c.connect(ctx, server_addr)?.expect("accepted");
        conn.write(ctx, b"hi")?.expect("send");
        ctx.delay(SimDuration::from_millis(2))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn poll_timeout_and_empty_select_match_the_substrate_semantics() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server_addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    let api_s = cl.nodes[1].api();
    sim.spawn("server", move |ctx| {
        let l = api_s.listen(ctx, 80, 8)?.expect("port free");
        let conn = l.accept(ctx)?;
        // An empty select can never wake: EINVAL, not a hang.
        assert_eq!(
            api_s.select_readable(ctx, &[])?.unwrap_err(),
            TcpError::Invalid
        );
        let t0 = ctx.now();
        let sources = [TcpPollSource {
            target: TcpPollTarget::Conn(&conn),
            token: 0,
            interest: Interest::READABLE,
        }];
        let events = api_s
            .poll(ctx, &sources, Some(SimDuration::from_millis(1)))?
            .expect("poll");
        assert!(events.is_empty(), "silent peer: the deadline must fire");
        assert!(ctx.now() - t0 >= SimDuration::from_millis(1));
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    let api_c = cl.nodes[0].api();
    sim.spawn("client", move |ctx| {
        let conn = api_c.connect(ctx, server_addr)?.expect("accepted");
        ctx.delay(SimDuration::from_millis(5))?;
        conn.close(ctx)?;
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}
