//! Edge-case coverage for the kernel stack: EOF exactness, half-close
//! semantics, UDP overflow, port exhaustion behaviour, listener teardown.

use kernel_tcp::{build_tcp_cluster, SockAddr, TcpCluster, TcpConfig, TcpError};
use parking_lot::Mutex;
use simnet::{Completion, Sim, SimDuration, SwitchConfig};
use std::sync::Arc;

fn cluster(n: usize) -> TcpCluster {
    build_tcp_cluster(n, TcpConfig::default(), SwitchConfig::default())
}

#[test]
fn eof_arrives_only_after_all_data() {
    let sim = Sim::new();
    let cl = cluster(2);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    let api_s = cl.nodes[1].api();
    sim.spawn("server", move |ctx| {
        let l = api_s.listen(ctx, 80, 4)?.expect("port");
        let c = l.accept(ctx)?;
        // Write everything, then close immediately: FIN is queued behind
        // the data and must not truncate it.
        c.write(ctx, &vec![9u8; 100_000])?.expect("write");
        c.close(ctx)?;
        Ok(())
    });
    let api_c = cl.nodes[0].api();
    sim.spawn("client", move |ctx| {
        let c = api_c.connect(ctx, addr)?.expect("connect");
        let mut got = 0usize;
        loop {
            let d = c.read(ctx, 8192)?.expect("read");
            if d.is_empty() {
                break;
            }
            assert!(d.iter().all(|&b| b == 9));
            got += d.len();
        }
        assert_eq!(got, 100_000, "EOF must come after every byte");
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn half_close_still_allows_receiving() {
    // A closes its send side; B can keep sending (CloseWait) and A keeps
    // reading until B's FIN.
    let sim = Sim::new();
    let cl = cluster(2);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    let api_s = cl.nodes[1].api();
    sim.spawn("peer-b", move |ctx| {
        let l = api_s.listen(ctx, 80, 4)?.expect("port");
        let c = l.accept(ctx)?;
        // Wait for A's FIN (read returns EOF), then still send data.
        let d = c.read(ctx, 64)?.expect("read");
        assert!(d.is_empty(), "A closed first");
        c.write(ctx, b"parting words")?
            .expect("send from CloseWait");
        c.close(ctx)?;
        Ok(())
    });
    let api_c = cl.nodes[0].api();
    sim.spawn("peer-a", move |ctx| {
        let c = api_c.connect(ctx, addr)?.expect("connect");
        c.close(ctx)?; // half-close: our FIN goes out
        let d = c
            .read_exact(ctx, 13)?
            .expect("read")
            .expect("data after our close");
        assert_eq!(&d[..], b"parting words");
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn write_after_close_is_an_error() {
    let sim = Sim::new();
    let cl = cluster(2);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let api_s = cl.nodes[1].api();
    sim.spawn("server", move |ctx| {
        let l = api_s.listen(ctx, 80, 4)?.expect("port");
        let _c = l.accept(ctx)?;
        ctx.delay(SimDuration::from_millis(1))?;
        Ok(())
    });
    let api_c = cl.nodes[0].api();
    sim.spawn("client", move |ctx| {
        let c = api_c.connect(ctx, addr)?.expect("connect");
        c.close(ctx)?;
        let err = c.write(ctx, b"too late")?.expect_err("closed socket");
        assert_eq!(err, TcpError::Closed);
        Ok(())
    });
    sim.run();
}

#[test]
fn udp_queue_overflow_drops_excess_datagrams() {
    let sim = Sim::new();
    let cl = cluster(2);
    let b_addr = SockAddr::new(cl.nodes[1].addr(), 5000);

    let api_b = cl.nodes[1].api();
    let api_a = cl.nodes[0].api();
    sim.spawn("receiver", move |ctx| {
        let s = api_b.udp_bind(ctx, 5000)?.expect("port");
        // Sleep while the sender floods far past the queue limit.
        ctx.delay(SimDuration::from_millis(100))?;
        let mut got = 0;
        while s.recv_from(ctx).is_ok() {
            got += 1;
            if got >= 128 {
                break; // the queue limit; anything more was dropped
            }
        }
        assert_eq!(got, 128);
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        let s = api_a.udp_bind(ctx, 5001)?.expect("port");
        for i in 0..200u32 {
            s.send_to(ctx, b_addr, &i.to_le_bytes())?;
        }
        Ok(())
    });
    sim.run_until(simnet::SimTime::from_millis(200));
    assert_eq!(
        cl.nodes[1].stack.udp_datagrams_dropped(),
        200 - 128,
        "datagrams beyond the socket buffer are dropped, UDP-style"
    );
}

#[test]
fn listener_unlisten_refuses_future_connects() {
    let sim = Sim::new();
    let cl = cluster(2);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let refused = Arc::new(Mutex::new(false));
    let r2 = Arc::clone(&refused);

    let api_s = cl.nodes[1].api();
    sim.spawn("server", move |ctx| {
        let l = api_s.listen(ctx, 80, 4)?.expect("port");
        let c = l.accept(ctx)?;
        let _ = c.read(ctx, 16)?;
        l.unlisten();
        c.close(ctx)?;
        ctx.delay(SimDuration::from_millis(5))?;
        Ok(())
    });
    let api_c = cl.nodes[0].api();
    sim.spawn("client", move |ctx| {
        let c = api_c.connect(ctx, addr)?.expect("first connect works");
        c.write(ctx, b"x")?.expect("send");
        ctx.delay(SimDuration::from_millis(1))?;
        c.close(ctx)?;
        let second = api_c.connect(ctx, addr)?;
        assert_eq!(second.err(), Some(TcpError::ConnectionRefused));
        *r2.lock() = true;
        Ok(())
    });
    sim.run();
    assert!(*refused.lock());
}

#[test]
fn duplicate_listen_is_addr_in_use() {
    let sim = Sim::new();
    let cl = cluster(1);
    let api = cl.nodes[0].api();
    sim.spawn("p", move |ctx| {
        let _l = api.listen(ctx, 80, 4)?.expect("first");
        let second = api.listen(ctx, 80, 4)?;
        assert_eq!(second.err(), Some(TcpError::AddrInUse));
        Ok(())
    });
    sim.run();
}

#[test]
fn many_sequential_connections_recycle_ephemeral_ports() {
    let sim = Sim::new();
    let cl = cluster(2);
    let addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();
    const CONNS: usize = 50;

    let api_s = cl.nodes[1].api();
    sim.spawn("server", move |ctx| {
        let l = api_s.listen(ctx, 80, 16)?.expect("port");
        for _ in 0..CONNS {
            let c = l.accept(ctx)?;
            let d = c.read_exact(ctx, 2)?.expect("read").expect("data");
            c.write(ctx, &d)?.expect("echo");
            c.close(ctx)?;
        }
        Ok(())
    });
    let api_c = cl.nodes[0].api();
    sim.spawn("client", move |ctx| {
        for i in 0..CONNS {
            let c = api_c.connect(ctx, addr)?.expect("connect");
            let msg = [(i % 256) as u8, (i / 256) as u8];
            c.write(ctx, &msg)?.expect("send");
            let r = c.read_exact(ctx, 2)?.expect("read").expect("echo");
            assert_eq!(&r[..], &msg);
            c.close(ctx)?;
        }
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn nagle_delays_back_to_back_small_writes() {
    // The classic Nagle + delayed-ack interaction: the second of two
    // sub-MSS writes is held until the first is acknowledged, and the
    // receiver delays that ack — so the pair takes a delayed-ack timeout
    // longer than with TCP_NODELAY semantics.
    fn two_small_writes_us(nagle: bool) -> f64 {
        let cfg = TcpConfig {
            nagle,
            ..TcpConfig::default()
        };
        let cl = build_tcp_cluster(2, cfg, SwitchConfig::default());
        let sim = Sim::new();
        let addr = SockAddr::new(cl.nodes[1].addr(), 80);
        let out = Arc::new(Mutex::new(f64::NAN));
        let o2 = Arc::clone(&out);
        let api_s = cl.nodes[1].api();
        sim.spawn("server", move |ctx| {
            let l = api_s.listen(ctx, 80, 4)?.expect("port");
            let c = l.accept(ctx)?;
            let d = c.read_exact(ctx, 2)?.expect("read").expect("two bytes");
            assert_eq!(&d[..], b"ab");
            c.write(ctx, b"!")?.expect("reply");
            Ok(())
        });
        let api_c = cl.nodes[0].api();
        sim.spawn("client", move |ctx| {
            let c = api_c.connect(ctx, addr)?.expect("connect");
            let t0 = simnet::SimAccess::now(ctx);
            c.write(ctx, b"a")?.expect("first");
            c.write(ctx, b"b")?.expect("second");
            c.read_exact(ctx, 1)?.expect("read").expect("reply");
            *o2.lock() = (simnet::SimAccess::now(ctx) - t0).as_micros_f64();
            c.close(ctx)?;
            Ok(())
        });
        sim.run();
        let us = *out.lock();
        assert!(us.is_finite());
        us
    }
    let nodelay = two_small_writes_us(false);
    let nagle = two_small_writes_us(true);
    assert!(
        nagle > nodelay + 150.0,
        "Nagle must stall on the delayed ack: {nagle:.0} vs {nodelay:.0} us"
    );
}
