//! Property tests of the wire formats: fragmentation must tile exactly
//! and every fragment must fit an Ethernet frame.

use kernel_tcp::wire::{udp_fragments, IpPacket, IpProto, UdpDatagram, IP_MTU_PAYLOAD};
use proptest::prelude::*;
use simnet::MTU;

proptest! {
    #[test]
    fn udp_fragments_tile_any_length(len in 0usize..1_000_000) {
        let frags = udp_fragments(len);
        prop_assert_eq!(frags.iter().sum::<usize>(), len);
        prop_assert!(!frags.is_empty());
        for (i, f) in frags.iter().enumerate() {
            // Every fragment (plus the first one's UDP header) fits IP's
            // per-frame payload.
            let overhead = if i == 0 { 8 } else { 0 };
            prop_assert!(f + overhead <= IP_MTU_PAYLOAD, "fragment {i} too big");
            // Only the last fragment may be short.
            if i + 1 < frags.len() && i > 0 {
                prop_assert_eq!(*f, IP_MTU_PAYLOAD);
            }
        }
    }

    #[test]
    fn every_udp_fragment_packet_fits_the_mtu(len in 0usize..200_000) {
        let frags = udp_fragments(len);
        let count = frags.len() as u32;
        for (idx, frag_len) in frags.into_iter().enumerate() {
            let pkt = IpPacket {
                src: simnet::MacAddr(0),
                dst: simnet::MacAddr(1),
                proto: IpProto::UdpFrag {
                    id: 42,
                    idx: idx as u32,
                    count,
                    dgram: UdpDatagram {
                        src_port: 1,
                        dst_port: 2,
                        data: bytes::Bytes::new(),
                    },
                    frag_len,
                },
            };
            prop_assert!(pkt.wire_len() <= MTU);
        }
    }
}
