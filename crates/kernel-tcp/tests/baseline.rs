//! End-to-end tests of the kernel TCP baseline, including the paper's
//! calibration points: ~120 µs one-way small-message latency, ~340 Mbps
//! with 16 KiB socket buffers, ~550 Mbps with large ones, and 200-250 µs
//! connection setup (§7.2, §7.4).

use kernel_tcp::{build_tcp_cluster, SockAddr, TcpCluster, TcpConfig, TcpError};
use parking_lot::Mutex;
use simnet::{Completion, Sim, SimAccess, SimDuration, SwitchConfig};
use std::sync::Arc;

fn cluster(n: usize) -> TcpCluster {
    build_tcp_cluster(n, TcpConfig::default(), SwitchConfig::default())
}

#[test]
fn connect_transfer_close_roundtrip() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server_addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    let api_s = cl.nodes[1].api();
    sim.spawn("server", move |ctx| {
        let l = api_s.listen(ctx, 80, 8)?.expect("port free");
        let conn = l.accept(ctx)?;
        let req = conn.read(ctx, 1024)?.expect("request");
        assert_eq!(&req[..], b"hello?");
        conn.write(ctx, b"world!")?.expect("write ok");
        conn.close(ctx)?;
        Ok(())
    });
    let api_c = cl.nodes[0].api();
    sim.spawn("client", move |ctx| {
        let conn = api_c.connect(ctx, server_addr)?.expect("accepted");
        conn.write(ctx, b"hello?")?.expect("write ok");
        let resp = conn.read(ctx, 1024)?.expect("response");
        assert_eq!(&resp[..], b"world!");
        let eof = conn.read(ctx, 1024)?.expect("eof");
        assert!(eof.is_empty(), "server closed; read must return EOF");
        conn.close(ctx)?;
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn connect_time_calibrates_to_paper() {
    // §7.4: "the connection time requires intervention by the kernel and
    // is typically about 200 to 250 us".
    let sim = Sim::new();
    let cl = cluster(2);
    let server_addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let measured = Arc::new(Mutex::new(0.0f64));
    let m2 = Arc::clone(&measured);

    let api_s = cl.nodes[1].api();
    sim.spawn("server", move |ctx| {
        let l = api_s.listen(ctx, 80, 16)?.expect("port free");
        for _ in 0..20 {
            let c = l.accept(ctx)?;
            c.close(ctx)?;
        }
        Ok(())
    });
    let api_c = cl.nodes[0].api();
    sim.spawn("client", move |ctx| {
        ctx.delay(SimDuration::from_micros(100))?;
        let iters = 20u32;
        let t0 = ctx.now();
        for _ in 0..iters {
            let c = api_c.connect(ctx, server_addr)?.expect("accepted");
            c.close(ctx)?;
        }
        *m2.lock() = ((ctx.now() - t0) / iters as u64).as_micros_f64();
        Ok(())
    });
    sim.run();
    let us = *measured.lock();
    assert!(
        (180.0..280.0).contains(&us),
        "TCP connect takes {us:.1} us; paper reports 200-250 us"
    );
}

#[test]
fn four_byte_latency_calibrates_to_paper() {
    // Ping-pong one-way latency for 4-byte messages: paper reports
    // ~120 us for TCP.
    let sim = Sim::new();
    let cl = cluster(2);
    let server_addr = SockAddr::new(cl.nodes[1].addr(), 7);
    let measured = Arc::new(Mutex::new(0.0f64));
    let m2 = Arc::clone(&measured);

    let api_s = cl.nodes[1].api();
    sim.spawn("echoer", move |ctx| {
        let l = api_s.listen(ctx, 7, 4)?.expect("port free");
        let c = l.accept(ctx)?;
        loop {
            let data = c.read(ctx, 64)?.expect("data");
            if data.is_empty() {
                break;
            }
            c.write(ctx, &data)?.expect("echo");
        }
        Ok(())
    });
    let api_c = cl.nodes[0].api();
    sim.spawn("pinger", move |ctx| {
        let c = api_c.connect(ctx, server_addr)?.expect("accepted");
        // Warm up one exchange.
        c.write(ctx, b"warm")?.expect("write");
        c.read_exact(ctx, 4)?.expect("read").expect("pong");
        let iters = 50u32;
        let t0 = ctx.now();
        for _ in 0..iters {
            c.write(ctx, b"ping")?.expect("write");
            c.read_exact(ctx, 4)?.expect("read").expect("pong");
        }
        let one_way = ((ctx.now() - t0) / iters as u64).as_micros_f64() / 2.0;
        *m2.lock() = one_way;
        c.close(ctx)?;
        Ok(())
    });
    sim.run();
    let us = *measured.lock();
    assert!(
        (105.0..135.0).contains(&us),
        "TCP 4-byte one-way latency {us:.1} us; paper reports ~120 us"
    );
}

fn measure_bandwidth(sockbuf: usize) -> f64 {
    const TOTAL: usize = 8 * 1024 * 1024;
    const CHUNK: usize = 64 * 1024;
    let sim = Sim::new();
    let cl = cluster(2);
    cl.nodes[0].stack.set_sockbuf(sockbuf);
    cl.nodes[1].stack.set_sockbuf(sockbuf);
    let server_addr = SockAddr::new(cl.nodes[1].addr(), 9);
    let measured = Arc::new(Mutex::new(0.0f64));
    let m2 = Arc::clone(&measured);

    let api_s = cl.nodes[1].api();
    sim.spawn("sink", move |ctx| {
        let l = api_s.listen(ctx, 9, 4)?.expect("port free");
        let c = l.accept(ctx)?;
        let mut got = 0usize;
        let t0 = ctx.now();
        loop {
            let data = c.read(ctx, CHUNK)?.expect("data");
            if data.is_empty() {
                break;
            }
            got += data.len();
        }
        let elapsed = ctx.now() - t0;
        assert_eq!(got, TOTAL);
        *m2.lock() = got as f64 * 8.0 / elapsed.as_secs_f64() / 1e6;
        Ok(())
    });
    let api_c = cl.nodes[0].api();
    sim.spawn("source", move |ctx| {
        let c = api_c.connect(ctx, server_addr)?.expect("accepted");
        let chunk = vec![0x5au8; CHUNK];
        for _ in 0..TOTAL / CHUNK {
            c.write(ctx, &chunk)?.expect("write");
        }
        c.close(ctx)?;
        Ok(())
    });
    sim.run();
    let mbps = *measured.lock();
    mbps
}

#[test]
fn bandwidth_with_default_16k_buffers_is_window_limited() {
    let mbps = measure_bandwidth(16 * 1024);
    assert!(
        (300.0..390.0).contains(&mbps),
        "TCP bandwidth with 16 KiB buffers {mbps:.0} Mbps; paper reports ~340 Mbps"
    );
}

#[test]
fn bandwidth_with_large_buffers_is_cpu_limited() {
    let mbps = measure_bandwidth(256 * 1024);
    assert!(
        (500.0..600.0).contains(&mbps),
        "TCP bandwidth with large buffers {mbps:.0} Mbps; paper reports ~550 Mbps"
    );
}

#[test]
fn larger_buffers_strictly_help_until_the_cpu_ceiling() {
    let a = measure_bandwidth(16 * 1024);
    let b = measure_bandwidth(64 * 1024);
    let c = measure_bandwidth(256 * 1024);
    let d = measure_bandwidth(512 * 1024);
    assert!(a < b, "16K ({a:.0}) must be slower than 64K ({b:.0})");
    assert!(b <= c + 1.0, "64K ({b:.0}) must not beat 256K ({c:.0})");
    // Beyond the CPU ceiling, more buffer gains (almost) nothing —
    // "after which increasing the kernel space allocated does not make
    // any difference" (§7.2).
    assert!((c - d).abs() < 25.0, "256K ({c:.0}) vs 512K ({d:.0})");
}

#[test]
fn connection_refused_when_no_listener() {
    let sim = Sim::new();
    let cl = cluster(2);
    let target = SockAddr::new(cl.nodes[1].addr(), 4444);
    let api = cl.nodes[0].api();
    sim.spawn("client", move |ctx| {
        let res = api.connect(ctx, target)?;
        assert_eq!(res.err(), Some(TcpError::ConnectionRefused));
        Ok(())
    });
    sim.run();
    assert_eq!(cl.nodes[1].stack.rsts_sent(), 1);
}

#[test]
fn backlog_overflow_refuses_connections() {
    let sim = Sim::new();
    let cl = cluster(2);
    let server_addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let refused = Arc::new(Mutex::new(0u32));

    // Server listens with backlog 1 and never accepts.
    let api_s = cl.nodes[1].api();
    sim.spawn("lazy-server", move |ctx| {
        let _l = api_s.listen(ctx, 80, 1)?.expect("port free");
        ctx.delay(SimDuration::from_millis(50))?;
        Ok(())
    });
    for i in 0..3 {
        let api = cl.nodes[0].api();
        let refused = Arc::clone(&refused);
        sim.spawn(format!("client-{i}"), move |ctx| {
            ctx.delay(SimDuration::from_micros(100 + i * 500))?;
            if api.connect(ctx, server_addr)?.is_err() {
                *refused.lock() += 1;
            }
            Ok(())
        });
    }
    sim.run();
    // First connection fills the backlog; later ones are refused.
    assert_eq!(*refused.lock(), 2);
}

#[test]
fn bidirectional_writes_do_not_deadlock_within_buffers() {
    // The paper (§5.2) notes TCP tolerates write-write/read-read patterns
    // up to the kernel buffer size; verify 8 KiB each way works with
    // 16 KiB buffers.
    let sim = Sim::new();
    let cl = cluster(2);
    let server_addr = SockAddr::new(cl.nodes[1].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();
    const N: usize = 4 * 1024;

    let api_s = cl.nodes[1].api();
    sim.spawn("peer-b", move |ctx| {
        let l = api_s.listen(ctx, 80, 4)?.expect("port free");
        let c = l.accept(ctx)?;
        // Write first, then read — mirror image of the client.
        c.write(ctx, &vec![2u8; N])?.expect("write");
        let got = c.read_exact(ctx, N)?.expect("read").expect("data");
        assert!(got.iter().all(|&b| b == 1));
        Ok(())
    });
    let api_c = cl.nodes[0].api();
    sim.spawn("peer-a", move |ctx| {
        let c = api_c.connect(ctx, server_addr)?.expect("accepted");
        c.write(ctx, &vec![1u8; N])?.expect("write");
        let got = c.read_exact(ctx, N)?.expect("read").expect("data");
        assert!(got.iter().all(|&b| b == 2));
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn udp_datagram_roundtrip_with_fragmentation() {
    let sim = Sim::new();
    let cl = cluster(2);
    let b_addr = SockAddr::new(cl.nodes[1].addr(), 5000);
    let done = Completion::new();
    let done2 = done.clone();

    let api_b = cl.nodes[1].api();
    sim.spawn("udp-b", move |ctx| {
        let s = api_b.udp_bind(ctx, 5000)?.expect("port free");
        let (from, data) = s.recv_from(ctx)?;
        assert_eq!(data.len(), 4000); // fragmented into 3 frames
        assert_eq!(from.port, 5001);
        s.send_to(ctx, from, &data[..100])?;
        Ok(())
    });
    let api_a = cl.nodes[0].api();
    sim.spawn("udp-a", move |ctx| {
        let s = api_a.udp_bind(ctx, 5001)?.expect("port free");
        ctx.delay(SimDuration::from_micros(50))?;
        s.send_to(ctx, b_addr, &vec![7u8; 4000])?;
        let (_, reply) = s.recv_from(ctx)?;
        assert_eq!(reply.len(), 100);
        done2.complete(ctx);
        Ok(())
    });
    sim.run();
    assert!(done.is_done());
}

#[test]
fn select_wakes_on_the_readable_connection() {
    let sim = Sim::new();
    let cl = cluster(3);
    let server_addr = SockAddr::new(cl.nodes[0].addr(), 80);
    let done = Completion::new();
    let done2 = done.clone();

    let api_s = cl.nodes[0].api();
    sim.spawn("selector", move |ctx| {
        let l = api_s.listen(ctx, 80, 8)?.expect("port free");
        let c1 = l.accept(ctx)?;
        let c2 = l.accept(ctx)?;
        // Identify connections by peer host.
        let conns = [&c1, &c2];
        let idx = api_s.select_readable(ctx, &conns)?.expect("nonempty set");
        let data = conns[idx].read(ctx, 64)?.expect("data");
        assert_eq!(&data[..], b"from-2");
        assert_eq!(conns[idx].peer_addr().host, simnet::MacAddr(2));
        done2.complete(ctx);
        Ok(())
    });
    for i in [1u16, 2u16] {
        let api = cl.nodes[i as usize].api();
        sim.spawn(format!("client-{i}"), move |ctx| {
            let c = api.connect(ctx, server_addr)?.expect("accepted");
            if i == 2 {
                ctx.delay(SimDuration::from_millis(1))?;
                c.write(ctx, b"from-2")?.expect("write");
            } else {
                // Node 1 connects but stays silent.
                ctx.delay(SimDuration::from_millis(5))?;
            }
            c.close(ctx)?;
            Ok(())
        });
    }
    sim.run();
    assert!(done.is_done());
}

#[test]
fn runs_are_deterministic() {
    fn run_once() -> (u64, f64) {
        let mbps = measure_bandwidth(32 * 1024);
        (0, mbps)
    }
    assert_eq!(run_once().1.to_bits(), run_once().1.to_bits());
}
