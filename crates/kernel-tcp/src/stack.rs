//! The kernel: demultiplexing, TCP machinery, timers and the cost model of
//! the traditional in-kernel path (Figure 3 of the paper).
//!
//! Everything here runs on the host's single "kernel" execution resource —
//! per-segment transmit/receive processing, interrupt handling, ack
//! generation — while application processes pay syscalls and user/kernel
//! copies on their own time. The separation is what lets the baseline reach
//! 550 Mbps while still costing ~120 µs per small message end-to-end.

use std::collections::HashMap;
use std::sync::{Arc, Weak};

use bytes::Bytes;
use hostsim::Host;
use parking_lot::Mutex;
use simnet::{
    EtherType, Frame, MacAddr, Payload, ProcessCtx, SimAccess, SimAccessExt, SimCondvar, SimQueue,
    SimResult,
};
use tigon_nic::FirmwareCpu;

use crate::config::TcpConfig;
use crate::nic::{AcenicNic, BatchHandler};
use crate::tcp::{conn_key, ConnKey, TcpError, TcpInner, TcpSocket, TcpState};
use crate::udp::UdpPort;
use crate::udp::UdpReasm;
use crate::wire::{IpPacket, IpProto, SockAddr, TcpFlags, TcpSegment};

/// A listening socket's kernel state.
pub(crate) struct ListenerState {
    pub(crate) port: u16,
    pub(crate) backlog: usize,
    /// Fully established connections awaiting `accept()`.
    pub(crate) queue: SimQueue<Arc<TcpSocket>>,
}

pub(crate) struct StackState {
    pub(crate) conns: HashMap<ConnKey, Arc<TcpSocket>>,
    pub(crate) listeners: HashMap<u16, Arc<ListenerState>>,
    pub(crate) udp_ports: HashMap<u16, Arc<UdpPort>>,
    pub(crate) udp_reasm: HashMap<(MacAddr, u64), UdpReasm>,
    pub(crate) next_ephemeral: u16,
    pub(crate) next_udp_id: u64,
    /// Socket buffer size for new sockets (the Figure 13 knob).
    pub(crate) sockbuf: usize,
    /// Per-stack connection budget: actives beyond this are refused
    /// ([`TcpError::Exhausted`] locally, RST to remote SYNs). `None` =
    /// unbounded.
    pub(crate) max_conns: Option<usize>,
    pub(crate) rst_sent: u64,
    pub(crate) udp_dropped: u64,
}

/// One host's kernel network stack.
pub struct TcpStack {
    pub(crate) host: Host,
    pub(crate) cfg: TcpConfig,
    /// The kernel execution resource (interrupts, protocol processing).
    pub(crate) kernel: FirmwareCpu,
    pub(crate) nic: Arc<AcenicNic>,
    pub(crate) state: Mutex<StackState>,
    /// Notified on any socket becoming readable — the `select()` hook.
    pub(crate) activity: SimCondvar,
    /// Cached `tcp.n<id>.segments_out` counter; telemetry is hooked up on
    /// the first emitted packet (the stack is built before any `Sim`
    /// exists).
    segments_out: Mutex<Option<Arc<simnet::emp_trace::Counter>>>,
    self_ref: Weak<TcpStack>,
}

impl TcpStack {
    /// Build the stack (and its NIC) for `host`.
    pub fn new(host: Host, cfg: TcpConfig) -> Arc<Self> {
        let nic = AcenicNic::new(
            host.id(),
            cfg.nic_tx_cost,
            cfg.coalesce_timer,
            cfg.coalesce_frames,
        );
        let sockbuf = cfg.default_sockbuf;
        let node = host.id().0;
        let stack = Arc::new_cyclic(|weak: &Weak<TcpStack>| TcpStack {
            host,
            cfg,
            kernel: FirmwareCpu::new("kernel").with_node(node),
            nic,
            state: Mutex::new(StackState {
                conns: HashMap::new(),
                listeners: HashMap::new(),
                udp_ports: HashMap::new(),
                udp_reasm: HashMap::new(),
                next_ephemeral: 32768,
                next_udp_id: 0,
                sockbuf,
                max_conns: None,
                rst_sent: 0,
                udp_dropped: 0,
            }),
            activity: SimCondvar::new(),
            segments_out: Mutex::new(None),
            self_ref: weak.clone(),
        });
        let weak: Weak<dyn BatchHandler> = Arc::downgrade(&stack) as Weak<dyn BatchHandler>;
        stack.nic.set_handler(weak);
        stack
    }

    /// The host this stack serves.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// The stack's NIC (to cable to a switch).
    pub fn nic(&self) -> &Arc<AcenicNic> {
        &self.nic
    }

    /// Stack configuration.
    pub fn cfg(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Set the socket buffer size used by sockets created from now on (the
    /// paper's "kernel space allocated by TCP for the NIC" knob, §7.2).
    pub fn set_sockbuf(&self, bytes: usize) {
        self.state.lock().sockbuf = bytes;
    }

    /// Cap live connections on this stack: an active open past the cap
    /// fails with [`TcpError::Exhausted`]; a remote SYN past it is
    /// refused with RST, exactly like a full accept backlog. `None`
    /// removes the cap.
    pub fn set_max_conns(&self, max: Option<usize>) {
        self.state.lock().max_conns = max;
    }

    /// RST segments emitted (refused connections).
    pub fn rsts_sent(&self) -> u64 {
        self.state.lock().rst_sent
    }

    /// Connections currently in the demux table — the overload harness's
    /// leak check (zero once every socket is closed on both ends).
    pub fn live_conns(&self) -> usize {
        self.state.lock().conns.len()
    }

    /// Total kernel-CPU time consumed by this stack (interrupts, protocol
    /// processing, ack generation) — the host cost EMP's NIC-resident
    /// design avoids.
    pub fn kernel_cpu_busy(&self) -> simnet::SimDuration {
        self.kernel.busy_total()
    }

    /// UDP datagrams dropped for lack of receive-queue space.
    pub fn udp_datagrams_dropped(&self) -> u64 {
        self.state.lock().udp_dropped
    }

    pub(crate) fn arc(&self) -> Arc<TcpStack> {
        self.self_ref.upgrade().expect("TcpStack is Arc-owned")
    }

    // ------------------------------------------------------------------
    // Wire side
    // ------------------------------------------------------------------

    pub(crate) fn emit(&self, s: &dyn SimAccess, pkt: IpPacket) {
        self.ensure_telemetry(s).inc();
        let wire_len = pkt.wire_len();
        let frame = Frame {
            src: pkt.src,
            dst: pkt.dst,
            ethertype: EtherType::IPV4,
            payload: Payload::new(pkt, wire_len),
        };
        self.nic.send(s, frame);
    }

    /// First-packet telemetry hookup: the per-node outbound-segment
    /// counter plus a sampled series of established connections.
    fn ensure_telemetry(&self, s: &dyn SimAccess) -> Arc<simnet::emp_trace::Counter> {
        if let Some(c) = self.segments_out.lock().clone() {
            return c;
        }
        let reg = s.telemetry();
        let node = self.host.id().0;
        let c = reg.counter(&format!("tcp.n{node}.segments_out"));
        let weak = self.self_ref.clone();
        reg.register_sampled(&format!("tcp.n{node}.conns"), move |_| {
            let st = weak.upgrade()?;
            let g = st.state.try_lock()?;
            Some(g.conns.len() as i64)
        });
        *self.segments_out.lock() = Some(Arc::clone(&c));
        c
    }

    /// Emit `seg` for `sock` on the kernel CPU at `cost`.
    fn emit_segment(
        &self,
        s: &dyn SimAccess,
        sock: &Arc<TcpSocket>,
        seg: TcpSegment,
        cost: simnet::SimDuration,
    ) {
        let me = self.arc();
        let pkt = IpPacket {
            src: sock.local.host,
            dst: sock.remote.host,
            proto: IpProto::Tcp(seg),
        };
        self.kernel.exec(s, cost, move |sim| me.emit(sim, pkt));
    }

    fn on_segment(&self, sim: &dyn SimAccess, src: MacAddr, seg: TcpSegment) {
        let key = ConnKey {
            local_port: seg.dst_port,
            remote: SockAddr::new(src, seg.src_port),
        };
        let sock = self.state.lock().conns.get(&key).cloned();
        if let Some(sock) = sock {
            self.sock_on_segment(sim, &sock, seg);
            return;
        }
        if seg.flags.syn && !seg.flags.ack {
            let (listener, budget_free) = {
                let st = self.state.lock();
                let free = st.max_conns.is_none_or(|m| st.conns.len() < m);
                (st.listeners.get(&seg.dst_port).cloned(), free)
            };
            if let Some(l) = listener {
                if budget_free && l.queue.len() < l.backlog {
                    self.spawn_child(sim, &l, key, &seg);
                    return;
                }
            }
            // No listener or backlog overflow: refuse.
            self.send_rst(sim, key);
        }
        // Anything else for an unknown connection is a stale segment from a
        // torn-down socket; drop it.
    }

    fn spawn_child(
        &self,
        sim: &dyn SimAccess,
        l: &Arc<ListenerState>,
        key: ConnKey,
        syn: &TcpSegment,
    ) {
        let sockbuf = self.state.lock().sockbuf;
        let child = Arc::new(TcpSocket {
            local: SockAddr::new(self.host.id(), l.port),
            remote: key.remote,
            inner: Mutex::new(TcpInner::new(&self.cfg, sockbuf, TcpState::SynRcvd)),
            cv: SimCondvar::new(),
        });
        child.inner.lock().peer_window = syn.window;
        self.state.lock().conns.insert(key, Arc::clone(&child));
        self.send_flags(
            sim,
            &child,
            TcpFlags {
                syn: true,
                ack: true,
                ..TcpFlags::default()
            },
        );
    }

    fn sock_on_segment(&self, sim: &dyn SimAccess, sock: &Arc<TcpSocket>, seg: TcpSegment) {
        let mut need_ack = false;
        let mut deliver_accept = false;
        let mut remove_key = None;
        {
            let mut i = sock.inner.lock();
            if seg.flags.rst {
                i.reset = true;
                i.state = TcpState::Closed;
                drop(i);
                sock.cv.notify_all(sim);
                self.activity.notify_all(sim);
                return;
            }
            i.peer_window = seg.window;
            if seg.flags.ack {
                let advance = seg.ack.min(i.snd_nxt).saturating_sub(i.snd_una);
                if advance > 0 {
                    i.snd_una += advance;
                    i.snd_buf.drain(..advance as usize);
                    // Slow start: one MSS per new ack; a loss-free LAN
                    // never leaves this phase. Capped to keep it finite.
                    i.cwnd = (i.cwnd + self.cfg.mss).min(1 << 20);
                }
            }
            match i.state {
                TcpState::SynSent if seg.flags.syn && seg.flags.ack => {
                    i.state = TcpState::Established;
                    need_ack = true;
                }
                TcpState::SynRcvd if seg.flags.ack && !seg.flags.syn => {
                    i.state = TcpState::Established;
                    deliver_accept = true;
                }
                _ => {}
            }
            if !seg.data.is_empty() && matches!(i.state, TcpState::Established | TcpState::FinWait)
            {
                debug_assert_eq!(seg.seq, i.rcv_nxt, "loss-free fabric delivers in order");
                i.rcv_buf.extend(seg.data.iter().copied());
                i.rcv_nxt += seg.data.len() as u64;
                i.unacked_segments += 1;
                if i.unacked_segments >= self.cfg.ack_every_segments {
                    need_ack = true;
                } else if !i.delack_armed {
                    i.delack_armed = true;
                    i.delack_gen += 1;
                    let gen = i.delack_gen;
                    let me = self.arc();
                    let sock2 = Arc::clone(sock);
                    sim.schedule_after(self.cfg.delack_timeout, move |sim2| {
                        let fire = {
                            let i = sock2.inner.lock();
                            i.delack_armed && i.delack_gen == gen && i.unacked_segments > 0
                        };
                        if fire {
                            me.send_ack(sim2, &sock2);
                        }
                    });
                }
            }
            if seg.flags.fin {
                i.fin_received = true;
                need_ack = true;
                i.state = match i.state {
                    TcpState::Established => TcpState::CloseWait,
                    TcpState::FinWait => TcpState::Closed,
                    s => s,
                };
            }
            // Crude FIN-ack detection (FIN carries no sequence space in
            // this model): in LastAck, any pure ack finishes the close.
            if i.state == TcpState::LastAck && seg.flags.ack && seg.data.is_empty() {
                i.state = TcpState::Closed;
            }
            if i.state == TcpState::Closed && i.fin_sent && i.fin_received {
                remove_key = Some(conn_key(sock.local, sock.remote));
            }
        }
        sock.cv.notify_all(sim);
        self.activity.notify_all(sim);
        if need_ack {
            self.send_ack(sim, sock);
        }
        if deliver_accept {
            let listener = self.state.lock().listeners.get(&sock.local.port).cloned();
            if let Some(l) = listener {
                l.queue.push(sim, Arc::clone(sock));
            }
        }
        self.try_output(sim, sock);
        if let Some(key) = remove_key {
            self.state.lock().conns.remove(&key);
        }
    }

    /// Push out as much data (and a queued FIN) as windows allow.
    pub(crate) fn try_output(&self, s: &dyn SimAccess, sock: &Arc<TcpSocket>) {
        let mut segs: Vec<TcpSegment> = Vec::new();
        {
            let mut i = sock.inner.lock();
            loop {
                let fin_pending = i.fin_queued && !i.fin_sent;
                if i.reset || (!i.can_send_data() && !fin_pending) {
                    break;
                }
                let window = i.cwnd.min(i.peer_window);
                let budget = window.saturating_sub(i.in_flight());
                let mut len = self.cfg.mss.min(i.unsent()).min(budget);
                // Nagle: a sub-MSS segment waits while earlier data is
                // unacknowledged (and the window isn't the limiter).
                if self.cfg.nagle
                    && len > 0
                    && len < self.cfg.mss
                    && len == i.unsent()
                    && i.in_flight() > 0
                {
                    len = 0;
                }
                if len == 0 {
                    // FIN rides once the buffer is drained onto the wire.
                    if i.fin_queued && !i.fin_sent && i.unsent() == 0 && i.can_send_data() {
                        i.fin_sent = true;
                        i.state = match i.state {
                            TcpState::Established => TcpState::FinWait,
                            TcpState::CloseWait => TcpState::LastAck,
                            s => s,
                        };
                        let adv = i.advertised_window(&self.cfg);
                        i.last_advertised = adv;
                        i.unacked_segments = 0;
                        i.delack_gen += 1;
                        i.delack_armed = false;
                        segs.push(TcpSegment {
                            src_port: sock.local.port,
                            dst_port: sock.remote.port,
                            seq: i.snd_nxt,
                            ack: i.rcv_nxt,
                            flags: TcpFlags {
                                fin: true,
                                ack: true,
                                ..TcpFlags::default()
                            },
                            window: adv,
                            data: Bytes::new(),
                        });
                    }
                    break;
                }
                let start = i.in_flight();
                let data: Vec<u8> = i.snd_buf.iter().skip(start).take(len).copied().collect();
                let adv = i.advertised_window(&self.cfg);
                i.last_advertised = adv;
                i.unacked_segments = 0;
                i.delack_gen += 1;
                i.delack_armed = false;
                segs.push(TcpSegment {
                    src_port: sock.local.port,
                    dst_port: sock.remote.port,
                    seq: i.snd_nxt,
                    ack: i.rcv_nxt,
                    flags: TcpFlags {
                        ack: true,
                        ..TcpFlags::default()
                    },
                    window: adv,
                    data: Bytes::from(data),
                });
                i.snd_nxt += len as u64;
            }
        }
        for seg in segs {
            self.emit_segment(s, sock, seg, self.cfg.tcp_tx_cost);
        }
    }

    /// Emit a pure acknowledgment / window update.
    pub(crate) fn send_ack(&self, s: &dyn SimAccess, sock: &Arc<TcpSocket>) {
        let seg = {
            let mut i = sock.inner.lock();
            let adv = i.advertised_window(&self.cfg);
            i.last_advertised = adv;
            i.unacked_segments = 0;
            i.delack_gen += 1;
            i.delack_armed = false;
            TcpSegment {
                src_port: sock.local.port,
                dst_port: sock.remote.port,
                seq: i.snd_nxt,
                ack: i.rcv_nxt,
                flags: TcpFlags {
                    ack: true,
                    ..TcpFlags::default()
                },
                window: adv,
                data: Bytes::new(),
            }
        };
        self.emit_segment(s, sock, seg, self.cfg.ack_tx_cost);
    }

    fn send_flags(&self, s: &dyn SimAccess, sock: &Arc<TcpSocket>, flags: TcpFlags) {
        let seg = {
            let i = sock.inner.lock();
            TcpSegment {
                src_port: sock.local.port,
                dst_port: sock.remote.port,
                seq: i.snd_nxt,
                ack: if flags.ack { i.rcv_nxt } else { 0 },
                flags,
                window: i.advertised_window(&self.cfg),
                data: Bytes::new(),
            }
        };
        self.emit_segment(s, sock, seg, self.cfg.tcp_tx_cost);
    }

    fn send_rst(&self, s: &dyn SimAccess, key: ConnKey) {
        self.state.lock().rst_sent += 1;
        let me = self.arc();
        let pkt = IpPacket {
            src: self.host.id(),
            dst: key.remote.host,
            proto: IpProto::Tcp(TcpSegment {
                src_port: key.local_port,
                dst_port: key.remote.port,
                seq: 0,
                ack: 0,
                flags: TcpFlags {
                    rst: true,
                    ..TcpFlags::default()
                },
                window: 0,
                data: Bytes::new(),
            }),
        };
        self.kernel
            .exec(s, self.cfg.ack_tx_cost, move |sim| me.emit(sim, pkt));
    }

    // ------------------------------------------------------------------
    // Process-facing operations (called through `api`)
    // ------------------------------------------------------------------

    fn alloc_ephemeral(&self, remote: SockAddr) -> u16 {
        let mut st = self.state.lock();
        loop {
            let port = st.next_ephemeral;
            st.next_ephemeral = if st.next_ephemeral >= 60999 {
                32768
            } else {
                st.next_ephemeral + 1
            };
            let key = ConnKey {
                local_port: port,
                remote,
            };
            if !st.conns.contains_key(&key) && !st.listeners.contains_key(&port) {
                return port;
            }
        }
    }

    /// Active open. Blocks until established or refused.
    pub(crate) fn connect(
        &self,
        ctx: &ProcessCtx,
        remote: SockAddr,
    ) -> SimResult<Result<Arc<TcpSocket>, TcpError>> {
        self.connect_inner(ctx, remote, None)
    }

    /// [`Self::connect`] bounded by an optional deadline: gives up with
    /// [`TcpError::Timeout`] (tearing the half-open socket down) when the
    /// handshake has not completed in time. Refusal (RST) stays a
    /// distinct outcome, as does [`TcpError::Exhausted`] past the
    /// per-stack connection budget.
    pub(crate) fn connect_inner(
        &self,
        ctx: &ProcessCtx,
        remote: SockAddr,
        deadline: Option<simnet::SimDuration>,
    ) -> SimResult<Result<Arc<TcpSocket>, TcpError>> {
        ctx.delay(self.host.cost().syscall)?;
        {
            let st = self.state.lock();
            if st.max_conns.is_some_and(|m| st.conns.len() >= m) {
                ctx.telemetry().counter("tcp.connects_exhausted").add(1);
                return Ok(Err(TcpError::Exhausted));
            }
        }
        let port = self.alloc_ephemeral(remote);
        let sockbuf = self.state.lock().sockbuf;
        let sock = Arc::new(TcpSocket {
            local: SockAddr::new(self.host.id(), port),
            remote,
            inner: Mutex::new(TcpInner::new(&self.cfg, sockbuf, TcpState::SynSent)),
            cv: SimCondvar::new(),
        });
        self.state
            .lock()
            .conns
            .insert(conn_key(sock.local, sock.remote), Arc::clone(&sock));
        self.send_flags(
            ctx,
            &sock,
            TcpFlags {
                syn: true,
                ..TcpFlags::default()
            },
        );
        let give_up_at = deadline.map(|d| ctx.now() + d);
        if let Some(at) = give_up_at {
            // The deadline rides the socket's own wake source.
            let cv = sock.cv.clone();
            ctx.schedule_at(at, move |s| cv.notify_all(s));
        }
        loop {
            {
                let i = sock.inner.lock();
                if i.reset {
                    drop(i);
                    self.state
                        .lock()
                        .conns
                        .remove(&conn_key(sock.local, sock.remote));
                    ctx.telemetry().counter("tcp.connects_refused").add(1);
                    return Ok(Err(TcpError::ConnectionRefused));
                }
                if i.state == TcpState::Established {
                    break;
                }
            }
            if give_up_at.is_some_and(|at| ctx.now() >= at) {
                // Tear the half-open socket down: the demux entry goes,
                // so a late SYN-ACK meets a drop (and the peer's child
                // socket is cleaned up by its own lifecycle).
                self.state
                    .lock()
                    .conns
                    .remove(&conn_key(sock.local, sock.remote));
                sock.inner.lock().state = TcpState::Closed;
                ctx.telemetry().counter("tcp.connects_timedout").add(1);
                return Ok(Err(TcpError::Timeout));
            }
            sock.cv.wait(ctx)?;
        }
        ctx.delay(self.host.cost().process_wakeup + self.host.cost().context_switch)?;
        Ok(Ok(sock))
    }

    /// Passive open.
    pub(crate) fn listen(
        &self,
        ctx: &ProcessCtx,
        port: u16,
        backlog: usize,
    ) -> SimResult<Result<Arc<ListenerState>, TcpError>> {
        ctx.delay(self.host.cost().syscall)?;
        let mut st = self.state.lock();
        if st.listeners.contains_key(&port) {
            return Ok(Err(TcpError::AddrInUse));
        }
        let l = Arc::new(ListenerState {
            port,
            backlog,
            queue: SimQueue::new(),
        });
        st.listeners.insert(port, Arc::clone(&l));
        Ok(Ok(l))
    }

    /// Stop listening (frees the port; queued connections stay accepted).
    pub(crate) fn unlisten(&self, port: u16) {
        self.state.lock().listeners.remove(&port);
    }

    pub(crate) fn accept(
        &self,
        ctx: &ProcessCtx,
        l: &Arc<ListenerState>,
    ) -> SimResult<Arc<TcpSocket>> {
        ctx.delay(self.host.cost().syscall)?;
        let sock = l.queue.pop(ctx)?;
        ctx.delay(self.host.cost().process_wakeup + self.host.cost().context_switch)?;
        Ok(sock)
    }

    /// Blocking read of up to `max` bytes. Empty result = orderly EOF.
    pub(crate) fn read(
        &self,
        ctx: &ProcessCtx,
        sock: &Arc<TcpSocket>,
        max: usize,
    ) -> SimResult<Result<Bytes, TcpError>> {
        ctx.delay(self.host.cost().syscall)?;
        let mut waited = false;
        loop {
            let taken = {
                let mut i = sock.inner.lock();
                if i.reset {
                    return Ok(Err(TcpError::ConnectionReset));
                }
                if !i.rcv_buf.is_empty() {
                    let n = max.min(i.rcv_buf.len());
                    let data: Vec<u8> = i.rcv_buf.drain(..n).collect();
                    let adv = i.advertised_window(&self.cfg);
                    // Window update when reading opened the window enough
                    // to matter to a stalled sender.
                    let update = adv >= i.last_advertised + 2 * self.cfg.mss;
                    Some((Bytes::from(data), update))
                } else if i.fin_received {
                    return Ok(Ok(Bytes::new()));
                } else if i.state == TcpState::Closed {
                    return Ok(Err(TcpError::Closed));
                } else {
                    None
                }
            };
            if let Some((data, update)) = taken {
                if waited {
                    ctx.delay(self.host.cost().process_wakeup + self.host.cost().context_switch)?;
                }
                ctx.delay(self.host.cost().memcpy(data.len()))?;
                if update {
                    self.send_ack(ctx, sock);
                }
                return Ok(Ok(data));
            }
            waited = true;
            sock.inner.lock().reader_waiting = true;
            let res = sock.cv.wait(ctx);
            sock.inner.lock().reader_waiting = false;
            res?;
        }
    }

    /// Blocking write of the whole buffer (standard blocking-socket
    /// semantics: returns once everything is copied into the send buffer).
    pub(crate) fn write(
        &self,
        ctx: &ProcessCtx,
        sock: &Arc<TcpSocket>,
        data: &[u8],
    ) -> SimResult<Result<usize, TcpError>> {
        ctx.delay(self.host.cost().syscall)?;
        let mut off = 0;
        while off < data.len() {
            let copied = {
                let mut i = sock.inner.lock();
                if i.reset {
                    return Ok(Err(TcpError::ConnectionReset));
                }
                if i.fin_queued || matches!(i.state, TcpState::Closed | TcpState::FinWait) {
                    return Ok(Err(TcpError::Closed));
                }
                let space = i.snd_cap - i.snd_buf.len();
                if space > 0 {
                    let n = space.min(data.len() - off);
                    i.snd_buf.extend(data[off..off + n].iter().copied());
                    off += n;
                    Some(n)
                } else {
                    None
                }
            };
            match copied {
                Some(n) => {
                    ctx.delay(self.host.cost().memcpy(n))?;
                    self.try_output(ctx, sock);
                }
                None => sock.cv.wait(ctx)?,
            }
        }
        Ok(Ok(data.len()))
    }

    /// Nonblocking read: serve what the receive buffer holds right now;
    /// [`TcpError::WouldBlock`] when a blocking read would park. Same
    /// syscall/copy/window-update accounting as [`TcpStack::read`], minus
    /// the wakeup path.
    pub(crate) fn try_read(
        &self,
        ctx: &ProcessCtx,
        sock: &Arc<TcpSocket>,
        max: usize,
    ) -> SimResult<Result<Bytes, TcpError>> {
        ctx.delay(self.host.cost().syscall)?;
        let taken = {
            let mut i = sock.inner.lock();
            if i.reset {
                return Ok(Err(TcpError::ConnectionReset));
            }
            if !i.rcv_buf.is_empty() {
                let n = max.min(i.rcv_buf.len());
                let data: Vec<u8> = i.rcv_buf.drain(..n).collect();
                let adv = i.advertised_window(&self.cfg);
                let update = adv >= i.last_advertised + 2 * self.cfg.mss;
                (Bytes::from(data), update)
            } else if i.fin_received {
                return Ok(Ok(Bytes::new()));
            } else if i.state == TcpState::Closed {
                return Ok(Err(TcpError::Closed));
            } else {
                return Ok(Err(TcpError::WouldBlock));
            }
        };
        let (data, update) = taken;
        ctx.delay(self.host.cost().memcpy(data.len()))?;
        if update {
            self.send_ack(ctx, sock);
        }
        Ok(Ok(data))
    }

    /// Nonblocking write: copy what fits the send buffer right now and
    /// report the count accepted; [`TcpError::WouldBlock`] when the
    /// buffer is full before any byte is taken.
    pub(crate) fn try_write(
        &self,
        ctx: &ProcessCtx,
        sock: &Arc<TcpSocket>,
        data: &[u8],
    ) -> SimResult<Result<usize, TcpError>> {
        ctx.delay(self.host.cost().syscall)?;
        let copied = {
            let mut i = sock.inner.lock();
            if i.reset {
                return Ok(Err(TcpError::ConnectionReset));
            }
            if i.fin_queued || matches!(i.state, TcpState::Closed | TcpState::FinWait) {
                return Ok(Err(TcpError::Closed));
            }
            let space = i.snd_cap - i.snd_buf.len();
            if space == 0 && !data.is_empty() {
                return Ok(Err(TcpError::WouldBlock));
            }
            let n = space.min(data.len());
            i.snd_buf.extend(data[..n].iter().copied());
            n
        };
        ctx.delay(self.host.cost().memcpy(copied))?;
        self.try_output(ctx, sock);
        Ok(Ok(copied))
    }

    /// Nonblocking accept: pop an established connection if one is
    /// queued; [`TcpError::WouldBlock`] otherwise.
    pub(crate) fn try_accept(
        &self,
        ctx: &ProcessCtx,
        l: &Arc<ListenerState>,
    ) -> SimResult<Result<Arc<TcpSocket>, TcpError>> {
        ctx.delay(self.host.cost().syscall)?;
        match l.queue.try_pop() {
            Some(sock) => {
                ctx.delay(self.host.cost().process_wakeup + self.host.cost().context_switch)?;
                Ok(Ok(sock))
            }
            None => Ok(Err(TcpError::WouldBlock)),
        }
    }

    /// Orderly close: queue a FIN behind any buffered data.
    pub(crate) fn close(&self, ctx: &ProcessCtx, sock: &Arc<TcpSocket>) -> SimResult<()> {
        ctx.delay(self.host.cost().syscall)?;
        {
            let mut i = sock.inner.lock();
            if i.fin_queued || i.reset || i.state == TcpState::Closed {
                return Ok(());
            }
            i.fin_queued = true;
        }
        self.try_output(ctx, sock);
        Ok(())
    }
}

impl BatchHandler for TcpStack {
    fn handle_batch(&self, s: &dyn SimAccess, frames: Vec<Frame>) {
        // One interrupt for the whole batch, then per-segment processing,
        // all on the kernel CPU.
        self.kernel.exec(s, self.cfg.interrupt_cost, |_| {});
        for frame in frames {
            let Some(pkt) = frame.payload.downcast::<IpPacket>().cloned() else {
                continue;
            };
            let cost = match &pkt.proto {
                IpProto::Tcp(seg)
                    if seg.data.is_empty()
                        && !seg.flags.syn
                        && !seg.flags.fin
                        && !seg.flags.rst =>
                {
                    self.cfg.ack_rx_cost
                }
                _ => self.cfg.tcp_rx_cost,
            };
            let me = self.arc();
            self.kernel.exec(s, cost, move |sim| match pkt.proto {
                IpProto::Tcp(seg) => me.on_segment(sim, pkt.src, seg),
                IpProto::UdpFrag {
                    id,
                    idx,
                    count,
                    dgram,
                    frag_len,
                } => crate::udp::on_frag(&me, sim, pkt.src, id, idx, count, dgram, frag_len),
            });
        }
    }
}
