//! The kernel baseline's completion-ring driver.
//!
//! [`TcpRingDriver`] gives the kernel TCP stack the same
//! submission/completion API as the EMP substrate by emulating it over
//! the stack's nonblocking operations — exactly how io_uring's
//! socket ops sit atop the in-kernel TCP code paths. Nothing about the
//! data path changes: every ring read still pays the kernel stack's
//! user/kernel copy and syscall-shaped costs, which is what makes the
//! completion-model comparison between the two stacks an
//! apples-to-apples differential test (same [`simnet::RingCore`]
//! semantics, different substrate underneath).

use simnet::ring::{OpError, RingConfig, RingCore, RingDriver};
use simnet::{Interest, ProcessCtx, SimDuration, SimResult};

use crate::api::{TcpApi, TcpConn, TcpListener, TcpPollSource, TcpPollTarget};
use crate::tcp::TcpError;

/// A completion ring over the kernel TCP stack.
pub type TcpRing = RingCore<TcpRingDriver>;

/// Build a completion ring over kernel sockets. `label` namespaces the
/// ring's telemetry gauges (`ring.<label>.*`).
pub fn ring(api: TcpApi, cfg: RingConfig, label: impl Into<String>) -> TcpRing {
    RingCore::new(TcpRingDriver { api }, cfg, label)
}

/// [`RingDriver`] over kernel [`TcpConn`]s/[`TcpListener`]s.
pub struct TcpRingDriver {
    /// The stack API, kept for its `poll` (the ring's park primitive).
    api: TcpApi,
}

fn map_err(e: TcpError) -> OpError {
    match e {
        TcpError::ConnectionRefused => OpError::Refused,
        TcpError::Closed => OpError::Closed,
        TcpError::ConnectionReset => OpError::PeerClosed,
        TcpError::AddrInUse | TcpError::Invalid => OpError::Invalid,
        TcpError::Timeout => OpError::Timeout,
        TcpError::Exhausted => OpError::Exhausted,
        TcpError::WouldBlock => OpError::Other,
    }
}

impl RingDriver for TcpRingDriver {
    type Conn = TcpConn;
    type Listener = TcpListener;

    fn try_accept(
        &self,
        ctx: &ProcessCtx,
        l: &TcpListener,
    ) -> SimResult<Result<Option<TcpConn>, OpError>> {
        Ok(match l.try_accept(ctx)? {
            Ok(c) => Ok(Some(c)),
            Err(TcpError::WouldBlock) => Ok(None),
            Err(e) => Err(map_err(e)),
        })
    }

    fn try_read(
        &self,
        ctx: &ProcessCtx,
        c: &TcpConn,
        buf: &mut [u8],
    ) -> SimResult<Result<Option<usize>, OpError>> {
        Ok(match c.try_read(ctx, buf.len())? {
            Ok(bytes) => {
                buf[..bytes.len()].copy_from_slice(&bytes);
                Ok(Some(bytes.len()))
            }
            Err(TcpError::WouldBlock) => Ok(None),
            Err(e) => Err(map_err(e)),
        })
    }

    fn try_write(
        &self,
        ctx: &ProcessCtx,
        c: &TcpConn,
        data: &[u8],
    ) -> SimResult<Result<Option<usize>, OpError>> {
        Ok(match c.try_write(ctx, data)? {
            Ok(n) => Ok(Some(n)),
            Err(TcpError::WouldBlock) => Ok(None),
            Err(e) => Err(map_err(e)),
        })
    }

    fn close(&self, ctx: &ProcessCtx, c: TcpConn) -> SimResult<()> {
        c.close(ctx)
    }

    fn close_listener(&self, _ctx: &ProcessCtx, l: TcpListener) -> SimResult<()> {
        l.unlisten();
        Ok(())
    }

    fn wait(
        &self,
        ctx: &ProcessCtx,
        conns: &[(&TcpConn, Interest)],
        listeners: &[&TcpListener],
        timeout: Option<SimDuration>,
    ) -> SimResult<()> {
        let mut sources: Vec<TcpPollSource<'_>> = Vec::with_capacity(conns.len() + listeners.len());
        for (i, (c, interest)) in conns.iter().enumerate() {
            sources.push(TcpPollSource {
                target: TcpPollTarget::Conn(c),
                token: i,
                interest: *interest,
            });
        }
        for (i, l) in listeners.iter().enumerate() {
            sources.push(TcpPollSource {
                target: TcpPollTarget::Listener(l),
                token: conns.len() + i,
                interest: Interest::ACCEPTABLE,
            });
        }
        // Events are discarded: RingCore re-drives every head op after
        // the wake, which subsumes them (a timeout wake lets the drive
        // pass expire deadlined head ops).
        match self.api.poll(ctx, &sources, timeout)? {
            Ok(_) => Ok(()),
            Err(e) => Err(simnet::SimError::app(e.to_string())),
        }
    }

    fn register_waker(
        &self,
        _ctx: &ProcessCtx,
        conns: &[(&TcpConn, Interest)],
        listeners: &[&TcpListener],
        waker: &std::task::Waker,
    ) -> SimResult<bool> {
        // Every source registers on the stack's single activity condvar;
        // readiness discovered during registration wakes immediately so
        // the ring re-drives instead of sleeping.
        let mut wake_now = false;
        for (c, interest) in conns {
            wake_now |= !c.poll_ready(*interest, waker).is_empty();
        }
        for l in listeners {
            wake_now |= !l.poll_acceptable(waker).is_empty();
        }
        if wake_now {
            waker.wake_by_ref();
        }
        Ok(true)
    }
}
