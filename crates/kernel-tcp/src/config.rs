//! Kernel TCP/IP cost constants.
//!
//! Calibrated against the paper's baseline numbers on Linux 2.4.18 with the
//! stock Acenic driver (the same Tigon silicon as EMP, running the standard
//! interrupt-driven firmware):
//!
//! * ~120 µs one-way latency for 4-byte messages — dominated by the NIC's
//!   receive interrupt coalescing timer plus per-segment kernel processing
//!   and the process wakeup;
//! * ~340 Mbps with the default 16 KiB socket buffer (window-limited: Linux
//!   advertises half the buffer) and ~550 Mbps with large buffers
//!   (CPU-limited by the receive-side kernel path);
//! * 200-250 µs connection setup (§7.4).

use simnet::SimDuration;

/// Tunables and cost constants of the kernel stack.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// TCP maximum segment size (Ethernet MTU minus 40 bytes of IP+TCP
    /// headers).
    pub mss: usize,
    /// Default socket buffer size, send and receive ("In default, TCP
    /// allocates 16 Kbytes of kernel space", §7.2).
    pub default_sockbuf: usize,
    /// Kernel-CPU cost to build and emit one data segment (TCP + IP +
    /// driver transmit path, software checksum).
    pub tcp_tx_cost: SimDuration,
    /// Kernel-CPU cost to process one received data segment.
    pub tcp_rx_cost: SimDuration,
    /// Kernel-CPU cost to emit a pure ack / window update.
    pub ack_tx_cost: SimDuration,
    /// Kernel-CPU cost to process a received pure ack.
    pub ack_rx_cost: SimDuration,
    /// NIC-side cost per transmitted frame (descriptor + DMA on the dumb
    /// NIC).
    pub nic_tx_cost: SimDuration,
    /// Cost of taking one receive interrupt (entry + Acenic handler +
    /// softirq dispatch), paid once per coalesced batch.
    pub interrupt_cost: SimDuration,
    /// The Acenic receive-interrupt coalescing timer: an interrupt fires
    /// this long after the first undelivered frame...
    pub coalesce_timer: SimDuration,
    /// ...or as soon as this many frames are pending, whichever is first.
    pub coalesce_frames: usize,
    /// Delayed-ack timer: a pure ack goes out this long after unacked data
    /// arrives unless a second segment (or reverse data) triggers it first.
    pub delack_timeout: SimDuration,
    /// Acks are sent after this many unacknowledged data segments.
    pub ack_every_segments: u32,
    /// Initial congestion window in segments.
    pub initial_cwnd_segments: u32,
    /// Nagle's algorithm: hold sub-MSS segments while unacknowledged data
    /// is outstanding. Off by default — the paper's benchmarks (like most
    /// latency benchmarks) run with TCP_NODELAY semantics — but modelled
    /// because its interaction with delayed acks is part of what "kernel
    /// TCP behaviour" means.
    pub nagle: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            default_sockbuf: 16 * 1024,
            tcp_tx_cost: SimDuration::from_micros(15),
            tcp_rx_cost: SimDuration::from_micros(16),
            ack_tx_cost: SimDuration::from_micros(4),
            ack_rx_cost: SimDuration::from_micros(8),
            nic_tx_cost: SimDuration::from_micros(3),
            interrupt_cost: SimDuration::from_micros(13),
            coalesce_timer: SimDuration::from_micros(60),
            coalesce_frames: 4,
            delack_timeout: SimDuration::from_micros(500),
            ack_every_segments: 2,
            initial_cwnd_segments: 2,
            nagle: false,
        }
    }
}

impl TcpConfig {
    /// The advertised receive window for a buffer with `unread` bytes
    /// queued: Linux reserves a quarter of the buffer for metadata
    /// overhead (`tcp_adv_win_scale = 2`, the 2.4 default), so a 16 KiB
    /// socket buffer yields a 12 KiB usable window.
    pub fn advertised_window(&self, sockbuf: usize, unread: usize) -> usize {
        (sockbuf - sockbuf / 4).saturating_sub(unread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advertised_window_is_three_quarters_of_buffer() {
        let c = TcpConfig::default();
        assert_eq!(c.advertised_window(16 * 1024, 0), 12 * 1024);
        assert_eq!(c.advertised_window(16 * 1024, 12 * 1024), 0);
        assert_eq!(c.advertised_window(16 * 1024, 14 * 1024), 0);
    }

    #[test]
    fn receive_path_supports_550mbps_ceiling() {
        // Calibration invariant: per-segment receive cost (rx processing +
        // amortized interrupt + amortized ack tx) ≈ 21 us => ~550 Mbps.
        let c = TcpConfig::default();
        let per_seg = c.tcp_rx_cost
            + c.interrupt_cost / c.coalesce_frames as u64
            + c.ack_tx_cost / u64::from(c.ack_every_segments);
        let mbps = c.mss as f64 * 8.0 / per_seg.as_secs_f64() / 1e6;
        assert!(
            (500.0..600.0).contains(&mbps),
            "kernel rx ceiling {mbps:.0} Mbps out of calibration range"
        );
    }
}
