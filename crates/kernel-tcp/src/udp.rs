//! UDP: connectionless datagrams over IP, with real fragmentation and
//! reassembly for datagrams larger than the MTU.

use std::sync::Arc;

use bytes::Bytes;
use simnet::{MacAddr, ProcessCtx, SimAccess, SimQueue, SimResult};

use crate::stack::TcpStack;
use crate::tcp::TcpError;
use crate::wire::{udp_fragments, IpPacket, IpProto, SockAddr, UdpDatagram};

/// Datagrams queued per UDP port before the kernel starts dropping (models
/// the receive socket buffer).
pub(crate) const UDP_QUEUE_LIMIT: usize = 128;

/// A bound UDP port's kernel state.
pub(crate) struct UdpPort {
    pub(crate) port: u16,
    pub(crate) queue: SimQueue<(SockAddr, Bytes)>,
}

/// In-progress reassembly of a fragmented datagram.
pub(crate) struct UdpReasm {
    pub(crate) received: u32,
    pub(crate) count: u32,
    pub(crate) dgram: UdpDatagram,
}

/// Bind a UDP port.
pub(crate) fn bind(
    stack: &TcpStack,
    ctx: &ProcessCtx,
    port: u16,
) -> SimResult<Result<Arc<UdpPort>, TcpError>> {
    ctx.delay(stack.host().cost().syscall)?;
    let mut st = stack.state.lock();
    if st.udp_ports.contains_key(&port) {
        return Ok(Err(TcpError::AddrInUse));
    }
    let p = Arc::new(UdpPort {
        port,
        queue: SimQueue::new(),
    });
    st.udp_ports.insert(port, Arc::clone(&p));
    Ok(Ok(p))
}

/// Send a datagram; fragments if it exceeds the MTU.
pub(crate) fn send_to(
    stack: &TcpStack,
    ctx: &ProcessCtx,
    src_port: u16,
    dst: SockAddr,
    data: &[u8],
) -> SimResult<()> {
    let cost = stack.host().cost();
    ctx.delay(cost.syscall + cost.memcpy(data.len()))?;
    let id = {
        let mut st = stack.state.lock();
        st.next_udp_id += 1;
        st.next_udp_id
    };
    let frags = udp_fragments(data.len());
    let count = frags.len() as u32;
    let dgram = UdpDatagram {
        src_port,
        dst_port: dst.port,
        data: Bytes::copy_from_slice(data),
    };
    for (idx, frag_len) in frags.into_iter().enumerate() {
        let me = stack.arc();
        let pkt = IpPacket {
            src: stack.host().id(),
            dst: dst.host,
            proto: IpProto::UdpFrag {
                id,
                idx: idx as u32,
                count,
                dgram: dgram.clone(),
                frag_len,
            },
        };
        stack
            .kernel
            .exec(ctx, stack.cfg().tcp_tx_cost, move |sim| me.emit(sim, pkt));
    }
    Ok(())
}

/// Blocking receive.
pub(crate) fn recv_from(
    stack: &TcpStack,
    ctx: &ProcessCtx,
    p: &Arc<UdpPort>,
) -> SimResult<(SockAddr, Bytes)> {
    let cost = stack.host().cost();
    ctx.delay(cost.syscall)?;
    let (from, data) = p.queue.pop(ctx)?;
    ctx.delay(cost.process_wakeup + cost.context_switch + cost.memcpy(data.len()))?;
    Ok((from, data))
}

/// Kernel-side fragment arrival (runs on the kernel CPU).
#[allow(clippy::too_many_arguments)]
pub(crate) fn on_frag(
    stack: &Arc<TcpStack>,
    sim: &dyn SimAccess,
    src: MacAddr,
    id: u64,
    _idx: u32,
    count: u32,
    dgram: UdpDatagram,
    _frag_len: usize,
) {
    let complete = if count == 1 {
        Some(dgram)
    } else {
        let mut st = stack.state.lock();
        let entry = st.udp_reasm.entry((src, id)).or_insert_with(|| UdpReasm {
            received: 0,
            count,
            dgram,
        });
        entry.received += 1;
        if entry.received == entry.count {
            let done = st.udp_reasm.remove(&(src, id)).expect("entry exists");
            Some(done.dgram)
        } else {
            None
        }
    };
    let Some(dgram) = complete else { return };
    let port = stack.state.lock().udp_ports.get(&dgram.dst_port).cloned();
    let Some(port) = port else { return }; // no socket: silently dropped
    if port.queue.len() >= UDP_QUEUE_LIMIT {
        stack.state.lock().udp_dropped += 1;
        return;
    }
    port.queue
        .push(sim, (SockAddr::new(src, dgram.src_port), dgram.data));
}

/// Unbind (socket close).
pub(crate) fn unbind(stack: &TcpStack, port: u16) {
    stack.state.lock().udp_ports.remove(&port);
}
