//! The "Acenic" NIC: the same Tigon silicon as EMP, running the stock
//! interrupt-driven firmware (paper §3: "Most of the current NIC drivers,
//! including the standard Acenic driver on Alteon NICs, use this style of
//! architecture").
//!
//! The key behavioural difference from EMP is on receive: frames are
//! buffered on the NIC and delivered to the kernel in *coalesced interrupt
//! batches* — an interrupt fires when `coalesce_frames` are pending or
//! `coalesce_timer` after the first one, whichever comes first. Coalescing
//! is what lets the kernel path reach 550 Mbps, and simultaneously what
//! puts a ~60 µs floor under small-message latency.

use std::sync::{Arc, Weak};

use parking_lot::Mutex;
use simnet::{Frame, FrameSink, LinkTx, MacAddr, SimAccess, SimAccessExt, SimDuration};
use tigon_nic::FirmwareCpu;

/// Receiver of coalesced frame batches (the kernel's interrupt handler).
pub trait BatchHandler: Send + Sync {
    /// Called once per interrupt with every frame delivered by it.
    fn handle_batch(&self, s: &dyn SimAccess, frames: Vec<Frame>);
}

struct RxState {
    pending: Vec<Frame>,
    timer_generation: u64,
    timer_armed: bool,
    interrupts: u64,
}

/// The conventional NIC model.
pub struct AcenicNic {
    mac: MacAddr,
    tx_cost: SimDuration,
    coalesce_timer: SimDuration,
    coalesce_frames: usize,
    tx_cpu: FirmwareCpu,
    link: Mutex<Option<LinkTx>>,
    rx: Mutex<RxState>,
    handler: Mutex<Option<Weak<dyn BatchHandler>>>,
    self_ref: Weak<AcenicNic>,
}

impl AcenicNic {
    /// Build a NIC for station `mac`.
    pub fn new(
        mac: MacAddr,
        tx_cost: SimDuration,
        coalesce_timer: SimDuration,
        coalesce_frames: usize,
    ) -> Arc<Self> {
        assert!(coalesce_frames >= 1, "coalescing threshold must be >= 1");
        Arc::new_cyclic(|weak| AcenicNic {
            mac,
            tx_cost,
            coalesce_timer,
            coalesce_frames,
            tx_cpu: FirmwareCpu::new("acenic-tx"),
            link: Mutex::new(None),
            rx: Mutex::new(RxState {
                pending: Vec::new(),
                timer_generation: 0,
                timer_armed: false,
                interrupts: 0,
            }),
            handler: Mutex::new(None),
            self_ref: weak.clone(),
        })
    }

    /// Station address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Cable the NIC to its switch port.
    pub fn attach_link(&self, tx: LinkTx) {
        *self.link.lock() = Some(tx);
    }

    /// Register the kernel's interrupt handler.
    pub fn set_handler(&self, handler: Weak<dyn BatchHandler>) {
        *self.handler.lock() = Some(handler);
    }

    /// Transmit a frame (driver has already built it; this is the NIC-side
    /// descriptor fetch + DMA + MAC, serialized on the NIC).
    pub fn send(&self, s: &dyn SimAccess, frame: Frame) {
        let me = self.self_ref.upgrade().expect("AcenicNic is Arc-owned");
        self.tx_cpu.exec(s, self.tx_cost, move |sim| {
            let link = me.link.lock();
            link.as_ref()
                .expect("NIC not attached to a link")
                .send(sim, frame);
        });
    }

    /// Interrupts raised so far.
    pub fn interrupts(&self) -> u64 {
        self.rx.lock().interrupts
    }

    fn fire(&self, s: &dyn SimAccess) {
        let batch = {
            let mut rx = self.rx.lock();
            rx.timer_generation += 1; // cancel any armed timer
            rx.timer_armed = false;
            if rx.pending.is_empty() {
                return;
            }
            rx.interrupts += 1;
            std::mem::take(&mut rx.pending)
        };
        let handler = self.handler.lock().as_ref().and_then(|w| w.upgrade());
        if let Some(h) = handler {
            h.handle_batch(s, batch);
        }
    }
}

impl FrameSink for AcenicNic {
    fn deliver(&self, s: &dyn SimAccess, frame: Frame) {
        if frame.dst != self.mac {
            return; // foreign flooded traffic
        }
        let fire_now = {
            let mut rx = self.rx.lock();
            rx.pending.push(frame);
            if rx.pending.len() >= self.coalesce_frames {
                true
            } else {
                if !rx.timer_armed {
                    rx.timer_armed = true;
                    rx.timer_generation += 1;
                    let gen = rx.timer_generation;
                    let me = self.self_ref.upgrade().expect("AcenicNic is Arc-owned");
                    s.schedule_after(self.coalesce_timer, move |sim| {
                        let live = {
                            let rx = me.rx.lock();
                            rx.timer_armed && rx.timer_generation == gen
                        };
                        if live {
                            me.fire(sim);
                        }
                    });
                }
                false
            }
        };
        if fire_now {
            self.fire(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{EtherType, Payload, Sim, SimTime};

    struct Recorder {
        batches: Mutex<Vec<(u64, usize)>>,
    }

    impl BatchHandler for Recorder {
        fn handle_batch(&self, s: &dyn SimAccess, frames: Vec<Frame>) {
            self.batches.lock().push((s.now().nanos(), frames.len()));
        }
    }

    fn frame(dst: u16) -> Frame {
        Frame {
            src: MacAddr(9),
            dst: MacAddr(dst),
            ethertype: EtherType::IPV4,
            payload: Payload::new((), 60),
        }
    }

    fn nic_with_recorder() -> (Arc<AcenicNic>, Arc<Recorder>) {
        let nic = AcenicNic::new(
            MacAddr(1),
            SimDuration::from_micros(3),
            SimDuration::from_micros(60),
            4,
        );
        let rec = Arc::new(Recorder {
            batches: Mutex::new(Vec::new()),
        });
        let weak: Weak<dyn BatchHandler> = Arc::downgrade(&rec) as Weak<dyn BatchHandler>;
        nic.set_handler(weak);
        (nic, rec)
    }

    #[test]
    fn lone_frame_waits_for_the_coalescing_timer() {
        let sim = Sim::new();
        let (nic, rec) = nic_with_recorder();
        let nic2 = Arc::clone(&nic);
        sim.schedule_at(SimTime::ZERO, move |s| nic2.deliver(s, frame(1)));
        sim.run();
        assert_eq!(*rec.batches.lock(), vec![(60_000, 1)]);
        assert_eq!(nic.interrupts(), 1);
    }

    #[test]
    fn threshold_fires_immediately() {
        let sim = Sim::new();
        let (nic, rec) = nic_with_recorder();
        let nic2 = Arc::clone(&nic);
        sim.schedule_at(SimTime::from_nanos(5), move |s| {
            for _ in 0..4 {
                nic2.deliver(s, frame(1));
            }
        });
        sim.run();
        assert_eq!(*rec.batches.lock(), vec![(5, 4)]);
    }

    #[test]
    fn timer_cancelled_after_threshold_fire() {
        let sim = Sim::new();
        let (nic, rec) = nic_with_recorder();
        // 5 frames: threshold batch of 4, then the straggler waits for a
        // fresh timer.
        let nic2 = Arc::clone(&nic);
        sim.schedule_at(SimTime::ZERO, move |s| {
            for _ in 0..5 {
                nic2.deliver(s, frame(1));
            }
        });
        sim.run();
        assert_eq!(*rec.batches.lock(), vec![(0, 4), (60_000, 1)]);
        assert_eq!(nic.interrupts(), 2);
    }

    #[test]
    fn foreign_frames_filtered() {
        let sim = Sim::new();
        let (nic, rec) = nic_with_recorder();
        let nic2 = Arc::clone(&nic);
        sim.schedule_at(SimTime::ZERO, move |s| nic2.deliver(s, frame(77)));
        sim.run();
        assert!(rec.batches.lock().is_empty());
    }
}
