//! IP, TCP and UDP wire formats.
//!
//! The traditional stack of Figure 3: applications sit on sockets, the
//! kernel implements TCP/UDP over IP over Ethernet. IP carries either whole
//! transport PDUs or fragments (UDP datagrams larger than the MTU really
//! fragment here; TCP never does because the MSS fits one frame).

use bytes::Bytes;
use simnet::{MacAddr, MTU};

/// IPv4 header bytes (no options).
pub const IP_HEADER: usize = 20;
/// TCP header bytes (no options).
pub const TCP_HEADER: usize = 20;
/// UDP header bytes.
pub const UDP_HEADER: usize = 8;
/// Largest IP payload per Ethernet frame.
pub const IP_MTU_PAYLOAD: usize = MTU - IP_HEADER;

/// A host/port pair — the sockets-level address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SockAddr {
    /// Station (host) address.
    pub host: MacAddr,
    /// Port number.
    pub port: u16,
}

impl SockAddr {
    /// Construct from host and port.
    pub fn new(host: MacAddr, port: u16) -> Self {
        SockAddr { host, port }
    }
}

impl std::fmt::Display for SockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

/// TCP flag bits.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct TcpFlags {
    /// Connection request.
    pub syn: bool,
    /// Acknowledgment field valid (set on everything after the first SYN).
    pub ack: bool,
    /// Orderly close.
    pub fin: bool,
    /// Abort (sent to unserviced ports).
    pub rst: bool,
}

/// One TCP segment.
#[derive(Clone, Debug)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (byte-stream offset).
    pub seq: u64,
    /// Cumulative acknowledgment (next expected byte).
    pub ack: u64,
    /// Flags.
    pub flags: TcpFlags,
    /// Advertised receive window in bytes.
    pub window: usize,
    /// Payload.
    pub data: Bytes,
}

impl TcpSegment {
    /// On-wire IP payload length of this segment.
    pub fn wire_len(&self) -> usize {
        TCP_HEADER + self.data.len()
    }
}

/// One UDP datagram (pre-fragmentation).
#[derive(Clone, Debug)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload.
    pub data: Bytes,
}

/// Transport PDU carried by IP.
#[derive(Clone, Debug)]
pub enum IpProto {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram fragment: `(datagram_id, frag_idx, frag_count, frag)`.
    /// Unfragmented datagrams have `frag_count == 1`.
    UdpFrag {
        /// Per-sender datagram id for reassembly.
        id: u64,
        /// Fragment index.
        idx: u32,
        /// Total fragments.
        count: u32,
        /// The datagram header+metadata (cloned into every fragment for
        /// simplicity; only the first fragment carries it on a real wire).
        dgram: UdpDatagram,
        /// This fragment's share of the payload in bytes.
        frag_len: usize,
    },
}

/// An IP packet: one Ethernet frame's worth.
#[derive(Clone, Debug)]
pub struct IpPacket {
    /// Source host.
    pub src: MacAddr,
    /// Destination host.
    pub dst: MacAddr,
    /// Transport payload.
    pub proto: IpProto,
}

impl IpPacket {
    /// On-wire Ethernet payload length.
    pub fn wire_len(&self) -> usize {
        IP_HEADER
            + match &self.proto {
                IpProto::Tcp(seg) => seg.wire_len(),
                IpProto::UdpFrag { idx, frag_len, .. } => {
                    // The UDP header rides in the first fragment only.
                    frag_len + if *idx == 0 { UDP_HEADER } else { 0 }
                }
            }
    }
}

/// Split a UDP payload of `len` bytes into per-fragment lengths. The first
/// fragment also carries the UDP header.
pub fn udp_fragments(len: usize) -> Vec<usize> {
    let first_cap = IP_MTU_PAYLOAD - UDP_HEADER;
    if len <= first_cap {
        return vec![len];
    }
    let mut frags = vec![first_cap];
    let mut rest = len - first_cap;
    while rest > 0 {
        let take = rest.min(IP_MTU_PAYLOAD);
        frags.push(take);
        rest -= take;
    }
    frags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_wire_len() {
        let seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::default(),
            window: 8192,
            data: Bytes::from(vec![0u8; 1460]),
        };
        assert_eq!(seg.wire_len(), 1480);
        let pkt = IpPacket {
            src: MacAddr(0),
            dst: MacAddr(1),
            proto: IpProto::Tcp(seg),
        };
        assert_eq!(pkt.wire_len(), 1500); // exactly fills the MTU
    }

    #[test]
    fn udp_fragmentation_tiles() {
        assert_eq!(udp_fragments(0), vec![0]);
        assert_eq!(udp_fragments(1472), vec![1472]);
        let frags = udp_fragments(4000);
        assert_eq!(frags.iter().sum::<usize>(), 4000);
        assert_eq!(frags[0], 1472);
        assert!(frags[1..].iter().all(|&f| f <= IP_MTU_PAYLOAD));
    }

    #[test]
    fn udp_fragment_wire_len_fits_mtu() {
        for (idx, &frag_len) in udp_fragments(10_000).iter().enumerate() {
            let pkt = IpPacket {
                src: MacAddr(0),
                dst: MacAddr(1),
                proto: IpProto::UdpFrag {
                    id: 1,
                    idx: idx as u32,
                    count: 8,
                    dgram: UdpDatagram {
                        src_port: 1,
                        dst_port: 2,
                        data: Bytes::new(),
                    },
                    frag_len,
                },
            };
            assert!(pkt.wire_len() <= MTU, "fragment {idx} exceeds MTU");
        }
    }
}
