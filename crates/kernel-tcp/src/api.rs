//! The process-facing sockets API of the kernel stack.
//!
//! Handle-based (a `TcpConn` rather than an integer fd): the integer-fd
//! interposition story belongs to the sockets-over-EMP substrate, which
//! maintains its own descriptor table (paper §5.4); the kernel baseline
//! here only needs functional parity for the benchmarked applications.

use std::sync::Arc;

use bytes::Bytes;
use simnet::{ProcessCtx, SimResult};

use crate::stack::{ListenerState, TcpStack};
use crate::tcp::{TcpError, TcpSocket};
use crate::udp::{self, UdpPort};
use crate::wire::SockAddr;

/// Entry point for processes on a host: make connections, listen, bind UDP.
#[derive(Clone)]
pub struct TcpApi {
    stack: Arc<TcpStack>,
}

impl TcpApi {
    /// API bound to `stack`.
    pub fn new(stack: Arc<TcpStack>) -> Self {
        TcpApi { stack }
    }

    /// The stack behind this API.
    pub fn stack(&self) -> &Arc<TcpStack> {
        &self.stack
    }

    /// This host's address.
    pub fn local_host(&self) -> simnet::MacAddr {
        self.stack.host().id()
    }

    /// Active open to `remote`; blocks for the three-way handshake
    /// (~200-250 µs on the calibrated testbed, §7.4).
    pub fn connect(
        &self,
        ctx: &ProcessCtx,
        remote: SockAddr,
    ) -> SimResult<Result<TcpConn, TcpError>> {
        Ok(self.stack.connect(ctx, remote)?.map(|sock| TcpConn {
            stack: Arc::clone(&self.stack),
            sock,
        }))
    }

    /// Passive open on `port`.
    pub fn listen(
        &self,
        ctx: &ProcessCtx,
        port: u16,
        backlog: usize,
    ) -> SimResult<Result<TcpListener, TcpError>> {
        Ok(self.stack.listen(ctx, port, backlog)?.map(|l| TcpListener {
            stack: Arc::clone(&self.stack),
            l,
        }))
    }

    /// Bind a UDP port.
    pub fn udp_bind(&self, ctx: &ProcessCtx, port: u16) -> SimResult<Result<UdpSock, TcpError>> {
        Ok(udp::bind(&self.stack, ctx, port)?.map(|p| UdpSock {
            stack: Arc::clone(&self.stack),
            p,
        }))
    }

    /// `select()` over connections for readability: blocks until at least
    /// one is readable and returns its index.
    pub fn select_readable(&self, ctx: &ProcessCtx, conns: &[&TcpConn]) -> SimResult<usize> {
        ctx.delay(self.stack.host().cost().syscall)?;
        loop {
            for (idx, c) in conns.iter().enumerate() {
                if c.readable() {
                    return Ok(idx);
                }
            }
            self.stack.activity.wait(ctx)?;
        }
    }

    /// Change the socket-buffer size for sockets created from now on.
    pub fn set_sockbuf(&self, bytes: usize) {
        self.stack.set_sockbuf(bytes);
    }
}

/// An established TCP connection.
pub struct TcpConn {
    stack: Arc<TcpStack>,
    sock: Arc<TcpSocket>,
}

impl TcpConn {
    /// Local address.
    pub fn local_addr(&self) -> SockAddr {
        self.sock.local
    }

    /// Peer address.
    pub fn peer_addr(&self) -> SockAddr {
        self.sock.remote
    }

    /// Blocking read of up to `max` bytes; an empty buffer is EOF.
    pub fn read(&self, ctx: &ProcessCtx, max: usize) -> SimResult<Result<Bytes, TcpError>> {
        self.stack.read(ctx, &self.sock, max)
    }

    /// Read exactly `n` bytes (looping over `read`); `None` on premature
    /// EOF.
    pub fn read_exact(
        &self,
        ctx: &ProcessCtx,
        n: usize,
    ) -> SimResult<Result<Option<Bytes>, TcpError>> {
        let mut buf = Vec::with_capacity(n);
        while buf.len() < n {
            let chunk = match self.read(ctx, n - buf.len())? {
                Ok(c) => c,
                Err(e) => return Ok(Err(e)),
            };
            if chunk.is_empty() {
                return Ok(Ok(None));
            }
            buf.extend_from_slice(&chunk);
        }
        Ok(Ok(Some(Bytes::from(buf))))
    }

    /// Blocking write of the whole buffer.
    pub fn write(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<Result<usize, TcpError>> {
        self.stack.write(ctx, &self.sock, data)
    }

    /// Orderly close (FIN behind buffered data).
    pub fn close(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.stack.close(ctx, &self.sock)
    }

    /// Would `read` return without blocking?
    pub fn readable(&self) -> bool {
        self.sock.inner.lock().readable()
    }
}

/// A listening socket.
pub struct TcpListener {
    stack: Arc<TcpStack>,
    l: Arc<ListenerState>,
}

impl TcpListener {
    /// Block for the next established connection.
    pub fn accept(&self, ctx: &ProcessCtx) -> SimResult<TcpConn> {
        let sock = self.stack.accept(ctx, &self.l)?;
        Ok(TcpConn {
            stack: Arc::clone(&self.stack),
            sock,
        })
    }

    /// Stop listening (the port frees; queued connections stay valid).
    pub fn unlisten(&self) {
        self.stack.unlisten(self.port());
    }

    /// The listening port.
    pub fn port(&self) -> u16 {
        // ListenerState is private; expose through its field here.
        self.l_port()
    }

    fn l_port(&self) -> u16 {
        self.l.port
    }
}

/// A bound UDP socket.
pub struct UdpSock {
    stack: Arc<TcpStack>,
    p: Arc<UdpPort>,
}

impl UdpSock {
    /// The bound port.
    pub fn port(&self) -> u16 {
        self.p.port
    }

    /// Send a datagram to `dst` (fragments beyond the MTU).
    pub fn send_to(&self, ctx: &ProcessCtx, dst: SockAddr, data: &[u8]) -> SimResult<()> {
        udp::send_to(&self.stack, ctx, self.p.port, dst, data)
    }

    /// Block for the next datagram.
    pub fn recv_from(&self, ctx: &ProcessCtx) -> SimResult<(SockAddr, Bytes)> {
        udp::recv_from(&self.stack, ctx, &self.p)
    }

    /// Unbind.
    pub fn close(&self) {
        udp::unbind(&self.stack, self.p.port);
    }
}
