//! The process-facing sockets API of the kernel stack.
//!
//! Handle-based (a `TcpConn` rather than an integer fd): the integer-fd
//! interposition story belongs to the sockets-over-EMP substrate, which
//! maintains its own descriptor table (paper §5.4); the kernel baseline
//! here only needs functional parity for the benchmarked applications.

use std::sync::Arc;

use bytes::Bytes;
use simnet::{Event, Interest, ProcessCtx, SimAccess, SimAccessExt, SimDuration, SimResult};

use crate::stack::{ListenerState, TcpStack};
use crate::tcp::{TcpError, TcpSocket};
use crate::udp::{self, UdpPort};
use crate::wire::SockAddr;

/// What one [`TcpPollSource`] watches: a connection or a listener.
pub enum TcpPollTarget<'a> {
    /// An established connection (readable/writable interests).
    Conn(&'a TcpConn),
    /// A listening socket (acceptable interest).
    Listener(&'a TcpListener),
}

/// One registration of a [`TcpApi::poll`] call: target, caller-chosen
/// token, and the interests to watch.
pub struct TcpPollSource<'a> {
    /// The socket to watch.
    pub target: TcpPollTarget<'a>,
    /// Token reported back in the matching [`Event`].
    pub token: usize,
    /// Interests to watch ([`Interest::ERROR`] is always reported).
    pub interest: Interest,
}

/// Entry point for processes on a host: make connections, listen, bind UDP.
#[derive(Clone)]
pub struct TcpApi {
    stack: Arc<TcpStack>,
}

impl TcpApi {
    /// API bound to `stack`.
    pub fn new(stack: Arc<TcpStack>) -> Self {
        TcpApi { stack }
    }

    /// The stack behind this API.
    pub fn stack(&self) -> &Arc<TcpStack> {
        &self.stack
    }

    /// This host's address.
    pub fn local_host(&self) -> simnet::MacAddr {
        self.stack.host().id()
    }

    /// Active open to `remote`; blocks for the three-way handshake
    /// (~200-250 µs on the calibrated testbed, §7.4).
    pub fn connect(
        &self,
        ctx: &ProcessCtx,
        remote: SockAddr,
    ) -> SimResult<Result<TcpConn, TcpError>> {
        Ok(self.stack.connect(ctx, remote)?.map(|sock| TcpConn {
            stack: Arc::clone(&self.stack),
            sock,
        }))
    }

    /// [`Self::connect`] bounded by `deadline`: fails with
    /// [`TcpError::Timeout`] when the handshake has not completed in time
    /// (refusal stays the distinct [`TcpError::ConnectionRefused`]).
    pub fn connect_deadline(
        &self,
        ctx: &ProcessCtx,
        remote: SockAddr,
        deadline: SimDuration,
    ) -> SimResult<Result<TcpConn, TcpError>> {
        Ok(self
            .stack
            .connect_inner(ctx, remote, Some(deadline))?
            .map(|sock| TcpConn {
                stack: Arc::clone(&self.stack),
                sock,
            }))
    }

    /// Passive open on `port`.
    pub fn listen(
        &self,
        ctx: &ProcessCtx,
        port: u16,
        backlog: usize,
    ) -> SimResult<Result<TcpListener, TcpError>> {
        Ok(self.stack.listen(ctx, port, backlog)?.map(|l| TcpListener {
            stack: Arc::clone(&self.stack),
            l,
        }))
    }

    /// Bind a UDP port.
    pub fn udp_bind(&self, ctx: &ProcessCtx, port: u16) -> SimResult<Result<UdpSock, TcpError>> {
        Ok(udp::bind(&self.stack, ctx, port)?.map(|p| UdpSock {
            stack: Arc::clone(&self.stack),
            p,
        }))
    }

    /// `poll()` over mixed sockets: blocks until at least one source is
    /// ready (or the timeout expires — then the empty vector), returning
    /// every ready one. One syscall charged on entry; every wait parks on
    /// the stack's activity condvar, which `sock_on_segment` notifies on
    /// each segment (data, acks opening the send window, accept-queue
    /// deliveries, resets), so all readiness kinds share one wake source.
    ///
    /// An empty source list with no timeout is [`TcpError::Invalid`]
    /// (the wait could never wake).
    pub fn poll(
        &self,
        ctx: &ProcessCtx,
        sources: &[TcpPollSource<'_>],
        timeout: Option<SimDuration>,
    ) -> SimResult<Result<Vec<Event>, TcpError>> {
        if sources.is_empty() && timeout.is_none() {
            return Ok(Err(TcpError::Invalid));
        }
        ctx.delay(self.stack.host().cost().syscall)?;
        let give_up_at = timeout.map(|d| ctx.now() + d);
        if let Some(at) = give_up_at {
            // The deadline rides the same wake source as the sockets.
            let cv = self.stack.activity.clone();
            ctx.schedule_at(at, move |s| cv.notify_all(s));
        }
        loop {
            let mut events = Vec::new();
            for src in sources {
                let ready = match &src.target {
                    TcpPollTarget::Conn(c) => {
                        let i = c.sock.inner.lock();
                        let mut r = Interest::EMPTY;
                        if i.reset {
                            r |= Interest::ERROR;
                        }
                        if src.interest.intersects(Interest::READABLE) && i.readable() {
                            r |= Interest::READABLE;
                        }
                        if src.interest.intersects(Interest::WRITABLE) && i.writable() {
                            r |= Interest::WRITABLE;
                        }
                        r
                    }
                    TcpPollTarget::Listener(l) => {
                        if src.interest.intersects(Interest::ACCEPTABLE) && !l.l.queue.is_empty() {
                            Interest::ACCEPTABLE
                        } else {
                            Interest::EMPTY
                        }
                    }
                };
                if !ready.is_empty() {
                    events.push(Event {
                        token: src.token,
                        ready,
                    });
                }
            }
            if !events.is_empty() {
                return Ok(Ok(events));
            }
            if give_up_at.is_some_and(|at| ctx.now() >= at) {
                return Ok(Ok(Vec::new()));
            }
            self.stack.activity.wait(ctx)?;
        }
    }

    /// `select()` over connections for readability: blocks until at least
    /// one is readable and returns its index. A readable-only
    /// [`TcpApi::poll`] underneath; an empty set is [`TcpError::Invalid`]
    /// (it could never wake), not an endless park.
    pub fn select_readable(
        &self,
        ctx: &ProcessCtx,
        conns: &[&TcpConn],
    ) -> SimResult<Result<usize, TcpError>> {
        let sources: Vec<TcpPollSource<'_>> = conns
            .iter()
            .enumerate()
            .map(|(idx, c)| TcpPollSource {
                target: TcpPollTarget::Conn(c),
                token: idx,
                interest: Interest::READABLE,
            })
            .collect();
        match self.poll(ctx, &sources, None)? {
            Ok(events) => Ok(Ok(events[0].token)),
            Err(e) => Ok(Err(e)),
        }
    }

    /// Change the socket-buffer size for sockets created from now on.
    pub fn set_sockbuf(&self, bytes: usize) {
        self.stack.set_sockbuf(bytes);
    }
}

/// An established TCP connection.
pub struct TcpConn {
    stack: Arc<TcpStack>,
    sock: Arc<TcpSocket>,
}

impl TcpConn {
    /// Local address.
    pub fn local_addr(&self) -> SockAddr {
        self.sock.local
    }

    /// Peer address.
    pub fn peer_addr(&self) -> SockAddr {
        self.sock.remote
    }

    /// Blocking read of up to `max` bytes; an empty buffer is EOF.
    pub fn read(&self, ctx: &ProcessCtx, max: usize) -> SimResult<Result<Bytes, TcpError>> {
        self.stack.read(ctx, &self.sock, max)
    }

    /// Read exactly `n` bytes (looping over `read`); `None` on premature
    /// EOF.
    pub fn read_exact(
        &self,
        ctx: &ProcessCtx,
        n: usize,
    ) -> SimResult<Result<Option<Bytes>, TcpError>> {
        let mut buf = Vec::with_capacity(n);
        while buf.len() < n {
            let chunk = match self.read(ctx, n - buf.len())? {
                Ok(c) => c,
                Err(e) => return Ok(Err(e)),
            };
            if chunk.is_empty() {
                return Ok(Ok(None));
            }
            buf.extend_from_slice(&chunk);
        }
        Ok(Ok(Some(Bytes::from(buf))))
    }

    /// Blocking write of the whole buffer.
    pub fn write(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<Result<usize, TcpError>> {
        self.stack.write(ctx, &self.sock, data)
    }

    /// Nonblocking read: serve what the receive buffer holds;
    /// [`TcpError::WouldBlock`] when a blocking read would park.
    pub fn try_read(&self, ctx: &ProcessCtx, max: usize) -> SimResult<Result<Bytes, TcpError>> {
        self.stack.try_read(ctx, &self.sock, max)
    }

    /// [`Self::read`] bounded by `deadline`: serves data the moment any
    /// arrives, fails with [`TcpError::Timeout`] if none does in time.
    pub fn read_deadline(
        &self,
        ctx: &ProcessCtx,
        max: usize,
        deadline: SimDuration,
    ) -> SimResult<Result<Bytes, TcpError>> {
        let give_up_at = ctx.now() + deadline;
        loop {
            match self.try_read(ctx, max)? {
                Ok(b) => return Ok(Ok(b)),
                Err(TcpError::WouldBlock) => {}
                Err(e) => return Ok(Err(e)),
            }
            let now = ctx.now();
            if now >= give_up_at {
                ctx.telemetry().counter("tcp.op_timeouts").add(1);
                return Ok(Err(TcpError::Timeout));
            }
            let api = TcpApi::new(Arc::clone(&self.stack));
            let sources = [TcpPollSource {
                target: TcpPollTarget::Conn(self),
                token: 0,
                interest: Interest::READABLE,
            }];
            let events = match api.poll(ctx, &sources, Some(give_up_at.since(now)))? {
                Ok(e) => e,
                Err(e) => return Ok(Err(e)),
            };
            if events.is_empty() {
                ctx.telemetry().counter("tcp.op_timeouts").add(1);
                return Ok(Err(TcpError::Timeout));
            }
        }
    }

    /// [`Self::write`] bounded by `deadline`: accepts what fits the send
    /// buffer the moment space frees up (a possibly short count, like
    /// POSIX `write`), fails with [`TcpError::Timeout`] if the buffer
    /// stays full — the slowloris defence on the kernel stack.
    pub fn write_deadline(
        &self,
        ctx: &ProcessCtx,
        data: &[u8],
        deadline: SimDuration,
    ) -> SimResult<Result<usize, TcpError>> {
        let give_up_at = ctx.now() + deadline;
        loop {
            match self.try_write(ctx, data)? {
                Ok(n) => return Ok(Ok(n)),
                Err(TcpError::WouldBlock) => {}
                Err(e) => return Ok(Err(e)),
            }
            let now = ctx.now();
            if now >= give_up_at {
                ctx.telemetry().counter("tcp.op_timeouts").add(1);
                return Ok(Err(TcpError::Timeout));
            }
            let api = TcpApi::new(Arc::clone(&self.stack));
            let sources = [TcpPollSource {
                target: TcpPollTarget::Conn(self),
                token: 0,
                interest: Interest::WRITABLE,
            }];
            let events = match api.poll(ctx, &sources, Some(give_up_at.since(now)))? {
                Ok(e) => e,
                Err(e) => return Ok(Err(e)),
            };
            if events.is_empty() {
                ctx.telemetry().counter("tcp.op_timeouts").add(1);
                return Ok(Err(TcpError::Timeout));
            }
        }
    }

    /// Nonblocking write: copy what fits the send buffer and report the
    /// count accepted; [`TcpError::WouldBlock`] when it is full before
    /// any byte is taken.
    pub fn try_write(&self, ctx: &ProcessCtx, data: &[u8]) -> SimResult<Result<usize, TcpError>> {
        self.stack.try_write(ctx, &self.sock, data)
    }

    /// Orderly close (FIN behind buffered data).
    pub fn close(&self, ctx: &ProcessCtx) -> SimResult<()> {
        self.stack.close(ctx, &self.sock)
    }

    /// Would `read` return without blocking?
    pub fn readable(&self) -> bool {
        self.sock.inner.lock().readable()
    }

    /// Would `write` make progress without blocking? (Send-buffer space,
    /// or an error state the write reports immediately.)
    pub fn writable(&self) -> bool {
        self.sock.inner.lock().writable()
    }

    /// Nonblocking readiness with a task-waker registration — the async
    /// front end's leaf on the kernel stack. Computes the same ready mask
    /// as a [`TcpApi::poll`] pass; when it is empty, registers `waker` on
    /// the stack's activity condvar (the single wake source every segment
    /// notifies) and reports pending. Condvar wakes are multi-shot and
    /// may be spurious: the caller re-checks and re-registers each poll,
    /// which is exactly the waker contract. Registration happens *after*
    /// the readiness check inside the engine's strict alternation, so no
    /// segment can land in between — the lost-wakeup race cannot occur.
    pub fn poll_ready(&self, interest: Interest, waker: &std::task::Waker) -> Interest {
        let ready = {
            let i = self.sock.inner.lock();
            let mut r = Interest::EMPTY;
            if i.reset {
                r |= Interest::ERROR;
            }
            if interest.intersects(Interest::READABLE) && i.readable() {
                r |= Interest::READABLE;
            }
            if interest.intersects(Interest::WRITABLE) && i.writable() {
                r |= Interest::WRITABLE;
            }
            r
        };
        if ready.is_empty() {
            self.stack.activity.watch_waker(waker);
        }
        ready
    }
}

/// A listening socket.
pub struct TcpListener {
    stack: Arc<TcpStack>,
    l: Arc<ListenerState>,
}

impl TcpListener {
    /// Block for the next established connection.
    pub fn accept(&self, ctx: &ProcessCtx) -> SimResult<TcpConn> {
        let sock = self.stack.accept(ctx, &self.l)?;
        Ok(TcpConn {
            stack: Arc::clone(&self.stack),
            sock,
        })
    }

    /// [`Self::accept`] bounded by `deadline`: fails with
    /// [`TcpError::Timeout`] if no established connection is queued in
    /// time — the bounded-patience accept an event loop interleaves with
    /// housekeeping.
    pub fn accept_deadline(
        &self,
        ctx: &ProcessCtx,
        deadline: SimDuration,
    ) -> SimResult<Result<TcpConn, TcpError>> {
        let give_up_at = ctx.now() + deadline;
        loop {
            match self.try_accept(ctx)? {
                Ok(c) => return Ok(Ok(c)),
                Err(TcpError::WouldBlock) => {}
                Err(e) => return Ok(Err(e)),
            }
            let now = ctx.now();
            if now >= give_up_at {
                ctx.telemetry().counter("tcp.op_timeouts").add(1);
                return Ok(Err(TcpError::Timeout));
            }
            let api = TcpApi::new(Arc::clone(&self.stack));
            let sources = [TcpPollSource {
                target: TcpPollTarget::Listener(self),
                token: 0,
                interest: Interest::ACCEPTABLE,
            }];
            let events = match api.poll(ctx, &sources, Some(give_up_at.since(now)))? {
                Ok(e) => e,
                Err(e) => return Ok(Err(e)),
            };
            if events.is_empty() {
                ctx.telemetry().counter("tcp.op_timeouts").add(1);
                return Ok(Err(TcpError::Timeout));
            }
        }
    }

    /// Nonblocking accept: pop an established connection if one is
    /// queued; [`TcpError::WouldBlock`] otherwise. Poll with
    /// [`Interest::ACCEPTABLE`] to learn when to retry.
    pub fn try_accept(&self, ctx: &ProcessCtx) -> SimResult<Result<TcpConn, TcpError>> {
        Ok(self.stack.try_accept(ctx, &self.l)?.map(|sock| TcpConn {
            stack: Arc::clone(&self.stack),
            sock,
        }))
    }

    /// Nonblocking accept-readiness with a task-waker registration: the
    /// listener-side analogue of [`TcpConn::poll_ready`]. Reports
    /// [`Interest::ACCEPTABLE`] when an established connection is queued,
    /// otherwise registers `waker` on the stack's activity condvar and
    /// reports [`Interest::EMPTY`] (= pending).
    pub fn poll_acceptable(&self, waker: &std::task::Waker) -> Interest {
        if !self.l.queue.is_empty() {
            return Interest::ACCEPTABLE;
        }
        self.stack.activity.watch_waker(waker);
        Interest::EMPTY
    }

    /// Stop listening (the port frees; queued connections stay valid).
    pub fn unlisten(&self) {
        self.stack.unlisten(self.port());
    }

    /// The listening port.
    pub fn port(&self) -> u16 {
        // ListenerState is private; expose through its field here.
        self.l_port()
    }

    fn l_port(&self) -> u16 {
        self.l.port
    }
}

/// A bound UDP socket.
pub struct UdpSock {
    stack: Arc<TcpStack>,
    p: Arc<UdpPort>,
}

impl UdpSock {
    /// The bound port.
    pub fn port(&self) -> u16 {
        self.p.port
    }

    /// Send a datagram to `dst` (fragments beyond the MTU).
    pub fn send_to(&self, ctx: &ProcessCtx, dst: SockAddr, data: &[u8]) -> SimResult<()> {
        udp::send_to(&self.stack, ctx, self.p.port, dst, data)
    }

    /// Block for the next datagram.
    pub fn recv_from(&self, ctx: &ProcessCtx) -> SimResult<(SockAddr, Bytes)> {
        udp::recv_from(&self.stack, ctx, &self.p)
    }

    /// Unbind.
    pub fn close(&self) {
        udp::unbind(&self.stack, self.p.port);
    }
}
