//! TCP socket state.
//!
//! A deliberately *simplified but behaviourally faithful* TCP for the
//! simulated LAN: the fabric is loss-free and ordered (the switch model
//! queues rather than drops), so there is no data retransmission machinery
//! and SYN/FIN do not consume sequence space. What *is* modelled precisely
//! is everything the paper's numbers depend on: the three-way handshake,
//! socket-buffer copies on both sides, sender flow control against the
//! advertised window (half the receive buffer, as Linux does), slow-start
//! congestion window growth, delayed acks, and RST for refused connections.

use std::collections::VecDeque;

use simnet::SimCondvar;

use crate::config::TcpConfig;
use crate::wire::SockAddr;

/// Connection lifecycle states (the subset a loss-free fabric needs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpState {
    /// Client sent SYN, awaiting SYN-ACK.
    SynSent,
    /// Listener child sent SYN-ACK, awaiting ACK.
    SynRcvd,
    /// Data flows.
    Established,
    /// We sent FIN first; peer may still send.
    FinWait,
    /// Peer sent FIN first; we may still send.
    CloseWait,
    /// We closed after the peer did (FIN sent from CloseWait).
    LastAck,
    /// Fully closed or reset.
    Closed,
}

/// Errors surfaced through the sockets API (an errno subset).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpError {
    /// RST received while connecting (no listener / backlog overflow).
    ConnectionRefused,
    /// Connection reset while established.
    ConnectionReset,
    /// Operation on a closed socket.
    Closed,
    /// Listen port already taken.
    AddrInUse,
    /// A nonblocking operation found nothing to do (EAGAIN): empty
    /// receive buffer, full send buffer, or empty accept queue.
    WouldBlock,
    /// Invalid argument (EINVAL): e.g. `select`/`poll` over an empty set
    /// with no timeout, which could never wake.
    Invalid,
    /// A deadline expired before the operation could complete
    /// (ETIMEDOUT): a bounded `connect`, or a deadlined
    /// `read`/`write`/`accept`.
    Timeout,
    /// A resource budget was exhausted (ENOBUFS): the per-stack
    /// connection budget. Mirrors the substrate's `ResourceExhausted`.
    Exhausted,
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::ConnectionRefused => write!(f, "connection refused"),
            TcpError::ConnectionReset => write!(f, "connection reset by peer"),
            TcpError::Closed => write!(f, "socket closed"),
            TcpError::AddrInUse => write!(f, "address in use"),
            TcpError::WouldBlock => write!(f, "operation would block"),
            TcpError::Invalid => write!(f, "invalid argument"),
            TcpError::Timeout => write!(f, "operation timed out"),
            TcpError::Exhausted => write!(f, "resource budget exhausted"),
        }
    }
}

impl std::error::Error for TcpError {}

/// Mutable socket state, guarded by the socket's mutex.
pub(crate) struct TcpInner {
    pub(crate) state: TcpState,
    // --- send side ---
    /// Unacknowledged + unsent bytes (front is `snd_una`).
    pub(crate) snd_buf: VecDeque<u8>,
    pub(crate) snd_cap: usize,
    /// First unacknowledged byte offset.
    pub(crate) snd_una: u64,
    /// Next byte offset to put on the wire.
    pub(crate) snd_nxt: u64,
    /// Congestion window (bytes); grows by one MSS per new ack (slow
    /// start — a loss-free LAN never leaves it).
    pub(crate) cwnd: usize,
    /// Peer's advertised receive window (bytes).
    pub(crate) peer_window: usize,
    pub(crate) fin_queued: bool,
    pub(crate) fin_sent: bool,
    // --- receive side ---
    /// Received, in-order, not yet read by the application.
    pub(crate) rcv_buf: VecDeque<u8>,
    pub(crate) rcv_cap: usize,
    /// Next expected byte offset.
    pub(crate) rcv_nxt: u64,
    pub(crate) fin_received: bool,
    pub(crate) reset: bool,
    // --- ack bookkeeping ---
    /// Window size most recently advertised to the peer.
    pub(crate) last_advertised: usize,
    /// Data segments received since the last ack we sent.
    pub(crate) unacked_segments: u32,
    /// Generation counter cancelling stale delayed-ack timers.
    pub(crate) delack_gen: u64,
    pub(crate) delack_armed: bool,
    /// True while a process is blocked in `read()`. The hosts are quad
    /// processors: a blocked reader drains the buffer concurrently with
    /// kernel processing, so acks generated then advertise the window as
    /// if the buffer were already empty.
    pub(crate) reader_waiting: bool,
}

impl TcpInner {
    pub(crate) fn new(cfg: &TcpConfig, sockbuf: usize, state: TcpState) -> Self {
        TcpInner {
            state,
            snd_buf: VecDeque::new(),
            snd_cap: sockbuf,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: cfg.mss * cfg.initial_cwnd_segments as usize,
            peer_window: cfg.mss,
            fin_queued: false,
            fin_sent: false,
            rcv_buf: VecDeque::new(),
            rcv_cap: sockbuf,
            rcv_nxt: 0,
            fin_received: false,
            reset: false,
            last_advertised: 0,
            unacked_segments: 0,
            delack_gen: 0,
            delack_armed: false,
            reader_waiting: false,
        }
    }

    /// Bytes in flight (sent, unacknowledged).
    pub(crate) fn in_flight(&self) -> usize {
        (self.snd_nxt - self.snd_una) as usize
    }

    /// Buffered bytes not yet put on the wire.
    pub(crate) fn unsent(&self) -> usize {
        self.snd_buf.len() - self.in_flight()
    }

    /// Current window to advertise. A blocked reader counts as an empty
    /// buffer (it drains on another CPU before new data could arrive).
    pub(crate) fn advertised_window(&self, cfg: &TcpConfig) -> usize {
        let unread = if self.reader_waiting {
            0
        } else {
            self.rcv_buf.len()
        };
        cfg.advertised_window(self.rcv_cap, unread)
    }

    /// True when `read()` would not block.
    pub(crate) fn readable(&self) -> bool {
        !self.rcv_buf.is_empty() || self.fin_received || self.reset
    }

    /// True when `write()` would make progress without blocking: send
    /// buffer space available, or an error/closed state the write reports
    /// immediately (POSIX `POLLOUT` semantics).
    pub(crate) fn writable(&self) -> bool {
        self.reset
            || self.fin_queued
            || matches!(self.state, TcpState::Closed | TcpState::FinWait)
            || self.snd_cap > self.snd_buf.len()
    }

    /// May the socket transmit data in its current state?
    pub(crate) fn can_send_data(&self) -> bool {
        matches!(self.state, TcpState::Established | TcpState::CloseWait)
    }
}

/// One TCP socket (connection endpoint). Created by `connect` or by a
/// listener accepting a SYN; owned jointly by the application handle and
/// the stack's demux table.
pub(crate) struct TcpSocket {
    pub(crate) local: SockAddr,
    pub(crate) remote: SockAddr,
    pub(crate) inner: parking_lot::Mutex<TcpInner>,
    /// Single condvar for all of this socket's waiters (connectors,
    /// readers, writers); state changes `notify_all` and waiters re-check.
    pub(crate) cv: SimCondvar,
}

/// Demux key: local port + full remote address (the local host is implied
/// by which stack the table lives in).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct ConnKey {
    pub(crate) local_port: u16,
    pub(crate) remote: SockAddr,
}

/// The local half of the key for a socket (the local host is implied by
/// the stack instance the table lives in).
pub(crate) fn conn_key(local: SockAddr, remote: SockAddr) -> ConnKey {
    ConnKey {
        local_port: local.port,
        remote,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inner() -> TcpInner {
        TcpInner::new(&TcpConfig::default(), 16 * 1024, TcpState::Established)
    }

    #[test]
    fn inflight_and_unsent_accounting() {
        let mut i = inner();
        i.snd_buf.extend(std::iter::repeat_n(0u8, 5000));
        assert_eq!(i.in_flight(), 0);
        assert_eq!(i.unsent(), 5000);
        i.snd_nxt = 3000;
        assert_eq!(i.in_flight(), 3000);
        assert_eq!(i.unsent(), 2000);
        i.snd_una = 1000;
        assert_eq!(i.in_flight(), 2000);
    }

    #[test]
    fn readable_conditions() {
        let mut i = inner();
        assert!(!i.readable());
        i.rcv_buf.push_back(1);
        assert!(i.readable());
        i.rcv_buf.clear();
        i.fin_received = true;
        assert!(i.readable());
    }

    #[test]
    fn advertised_window_shrinks_with_unread_data() {
        let cfg = TcpConfig::default();
        let mut i = inner();
        assert_eq!(i.advertised_window(&cfg), 12 * 1024);
        i.rcv_buf.extend(std::iter::repeat_n(0u8, 3000));
        assert_eq!(i.advertised_window(&cfg), 12 * 1024 - 3000);
        i.reader_waiting = true;
        assert_eq!(i.advertised_window(&cfg), 12 * 1024);
    }

    #[test]
    fn data_allowed_only_when_open() {
        let mut i = inner();
        assert!(i.can_send_data());
        i.state = TcpState::CloseWait;
        assert!(i.can_send_data());
        i.state = TcpState::FinWait;
        assert!(!i.can_send_data());
        i.state = TcpState::Closed;
        assert!(!i.can_send_data());
    }
}
