//! # kernel-tcp — the baseline: kernel sockets over a conventional driver
//!
//! The "traditional communication architecture" of the paper's Figure 3,
//! built from scratch: BSD-style sockets whose data path runs through the
//! kernel — syscalls and user/kernel copies at the edges, TCP/UDP/IP
//! processing on the kernel CPU, and an interrupt-driven NIC (the same
//! Tigon silicon as EMP running the stock "Acenic" firmware, with receive
//! interrupt coalescing).
//!
//! Calibrated to the paper's baseline measurements: ~120 µs small-message
//! latency, ~340 Mbps with the default 16 KiB socket buffers, ~550 Mbps
//! with large ones, and 200-250 µs connection setup.

#![warn(missing_docs)]

pub mod api;
pub mod config;
pub mod nic;
pub mod ring;
pub mod stack;
pub mod tcp;
pub mod testbed;
pub mod udp;
pub mod wire;

pub use api::{TcpApi, TcpConn, TcpListener, TcpPollSource, TcpPollTarget, UdpSock};
pub use config::TcpConfig;
pub use nic::AcenicNic;
pub use ring::{TcpRing, TcpRingDriver};
pub use simnet::{Event, Interest};
pub use stack::TcpStack;
pub use tcp::TcpError;
pub use testbed::{build_tcp_cluster, TcpCluster, TcpNode};
pub use wire::SockAddr;
