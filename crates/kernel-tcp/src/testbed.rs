//! Testbed construction: a kernel-TCP cluster on one switch.

use std::sync::Arc;

use hostsim::Host;
use simnet::{FrameSink, MacAddr, Switch, SwitchConfig};

use crate::api::TcpApi;
use crate::config::TcpConfig;
use crate::stack::TcpStack;

/// One node: host + kernel stack (NIC already cabled).
pub struct TcpNode {
    /// The machine.
    pub host: Host,
    /// Its kernel network stack.
    pub stack: Arc<TcpStack>,
}

impl TcpNode {
    /// A sockets API handle for processes on this node.
    pub fn api(&self) -> TcpApi {
        TcpApi::new(Arc::clone(&self.stack))
    }

    /// Station address.
    pub fn addr(&self) -> MacAddr {
        self.host.id()
    }
}

/// A cluster of kernel-TCP nodes on one switch.
pub struct TcpCluster {
    /// The switch in the middle.
    pub switch: Switch,
    /// Nodes addressed `MacAddr(0..n)`.
    pub nodes: Vec<TcpNode>,
}

/// Build `n` nodes attached to a fresh switch.
pub fn build_tcp_cluster(n: usize, cfg: TcpConfig, switch_cfg: SwitchConfig) -> TcpCluster {
    let switch = Switch::new(switch_cfg);
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let mac = MacAddr(i as u16);
        let host = Host::new(mac);
        let stack = TcpStack::new(host.clone(), cfg.clone());
        let sink: Arc<dyn FrameSink> = Arc::clone(stack.nic()) as Arc<dyn FrameSink>;
        stack.nic().attach_link(switch.attach(&sink));
        switch.register_mac(mac, i);
        nodes.push(TcpNode { host, stack });
    }
    TcpCluster { switch, nodes }
}
