//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! Two views are written into one file:
//!
//! - **Breakdown track** (pid 0): complete (`"X"`) duration events from
//!   the same milestone tiling as [`crate::Breakdown`], so the RTT
//!   decomposition is visible as nested colored spans on a timeline.
//! - **Event instants** (pid = node + 1): every recorded event as an
//!   instant (`"i"`) event, one process row per station, one thread row
//!   per connection.
//!
//! The JSON is hand-rolled: every emitted string is a static identifier
//! or a formatted number, so no escaping is required.

use std::fmt::Write as _;

use crate::breakdown::Stage;
use crate::event::{TraceEvent, NO_CONN};

/// Serialize `events` (any order) as a Chrome trace-event JSON object.
/// Timestamps are exported in microseconds as the format requires.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.t_ns);

    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;

    // Breakdown track: spans between consecutive milestones.
    let mut prev: Option<&TraceEvent> = None;
    for e in sorted.iter().filter(|e| e.kind.is_milestone()) {
        if let (Some(p), Some(stage)) = (prev, Stage::for_closing_milestone(e.kind)) {
            if e.t_ns > p.t_ns {
                sep(&mut out, &mut first);
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"breakdown\",\"ph\":\"X\",\
                     \"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":0}}",
                    ident(stage.name()),
                    p.t_ns as f64 / 1e3,
                    (e.t_ns - p.t_ns) as f64 / 1e3,
                );
            }
        }
        prev = Some(e);
    }

    // Every event as an instant on its station's row.
    for e in &sorted {
        sep(&mut out, &mut first);
        let tid = if e.conn == NO_CONN { 0 } else { e.conn + 1 };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"a\":{},\"b\":{}}}}}",
            e.kind.name(),
            e.t_ns as f64 / 1e3,
            u32::from(e.node) + 1,
            tid,
            e.a,
            e.b,
        );
    }

    out.push_str("]}");
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// Replace spaces so span names stay single identifiers (no escaping
/// needed anywhere in the output).
fn ident(name: &str) -> String {
    name.replace(' ', "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, NO_CONN};

    fn m(t: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            node: 2,
            conn: NO_CONN,
            kind,
            a: 1,
            b: 2,
        }
    }

    /// Minimal JSON validity checker (objects, arrays, strings, numbers).
    fn validate_json(s: &str) {
        let bytes = s.as_bytes();
        let mut i = 0usize;
        fn ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && (b[*i] as char).is_whitespace() {
                *i += 1;
            }
        }
        fn value(b: &[u8], i: &mut usize) {
            ws(b, i);
            match b.get(*i) {
                Some(b'{') => {
                    *i += 1;
                    ws(b, i);
                    if b.get(*i) == Some(&b'}') {
                        *i += 1;
                        return;
                    }
                    loop {
                        string(b, i);
                        ws(b, i);
                        assert_eq!(b.get(*i), Some(&b':'), "expected ':' at {i}");
                        *i += 1;
                        value(b, i);
                        ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b'}') => {
                                *i += 1;
                                return;
                            }
                            other => panic!("bad object at {i}: {other:?}"),
                        }
                    }
                }
                Some(b'[') => {
                    *i += 1;
                    ws(b, i);
                    if b.get(*i) == Some(&b']') {
                        *i += 1;
                        return;
                    }
                    loop {
                        value(b, i);
                        ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b']') => {
                                *i += 1;
                                return;
                            }
                            other => panic!("bad array at {i}: {other:?}"),
                        }
                    }
                }
                Some(b'"') => string(b, i),
                Some(c) if c.is_ascii_digit() || *c == b'-' => {
                    while *i < b.len()
                        && matches!(b[*i], b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E')
                    {
                        *i += 1;
                    }
                }
                other => panic!("bad value at {i}: {other:?}"),
            }
        }
        fn string(b: &[u8], i: &mut usize) {
            ws(b, i);
            assert_eq!(b.get(*i), Some(&b'"'), "expected '\"' at {i}");
            *i += 1;
            while b.get(*i) != Some(&b'"') {
                assert_ne!(b.get(*i), Some(&b'\\'), "stub emits no escapes");
                assert!(*i < b.len(), "unterminated string");
                *i += 1;
            }
            *i += 1;
        }
        value(bytes, &mut i);
        ws(bytes, &mut i);
        assert_eq!(i, bytes.len(), "trailing garbage after JSON value");
    }

    #[test]
    fn export_is_valid_json_with_spans_and_instants() {
        let events = vec![
            m(100, EventKind::SockWriteStart),
            m(200, EventKind::TxDoorbell),
            m(900, EventKind::NicRxStart),
            m(1000, EventKind::SockReadEnd),
            m(150, EventKind::WireTx),
        ];
        let json = chrome_trace_json(&events);
        validate_json(&json);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""), "breakdown spans present");
        assert!(json.contains("\"ph\":\"i\""), "instant events present");
        assert!(json.contains("wire/tx"));
        assert!(json.contains("host_overhead"));
    }

    #[test]
    fn empty_trace_still_exports_valid_json() {
        let json = chrome_trace_json(&[]);
        validate_json(&json);
        assert!(json.contains("\"traceEvents\":[]"));
    }
}
