//! Always-on telemetry: log-linear histograms, gauges, sampled time
//! series, and the cross-layer [`Registry`].
//!
//! Unlike the event tracing in this crate (gated behind the `trace`
//! feature), everything here is compiled unconditionally and designed to
//! stay cheap enough to leave on: recording into a [`LogLinHistogram`] or
//! bumping a [`Gauge`] is a handful of relaxed atomic operations, and the
//! sampler's fast path is a single atomic load per executed sim event.
//!
//! Layers register into one per-simulation [`Registry`] (owned by
//! `simnet::SimShared`, reached via `SimAccess::telemetry()`) under stable
//! dotted names:
//!
//! | prefix      | owner                | examples                          |
//! |-------------|----------------------|-----------------------------------|
//! | `app.`      | `emp-apps`           | `app.rtt_ns`, `app.eventloop_turn_ns` |
//! | `sock.`     | `core` (sockets)     | `sock.credit_wait_ns`, `sock.n1.credits_out` |
//! | `core.`     | `core` (poll)        | `core.poll_wait_ns`               |
//! | `emp.`      | `emp-proto`          | `emp.msg_latency_ns`, `emp.n0.tx_inflight` |
//! | `tcp.`      | `kernel-tcp`         | `tcp.n0.segments_out`             |
//! | `nicfw.`    | `tigon-nic`          | `nicfw.n0.tx.backlog_ns`          |
//! | `nic.`      | NIC uplinks          | `nic.n0.uplink.backlog_ns`        |
//! | `switch.`   | `simnet` switch      | `switch.port0.backlog_ns`         |
//! | `host.`     | harness wall clock   | `host.wall_us_per_sim_s`          |
//!
//! Everything except the `host.` namespace is a pure function of simulated
//! execution, so two same-seed runs produce byte-identical snapshots;
//! [`RegistrySnapshot::deterministic_text`] renders exactly that subset.
//!
//! Time series are produced by a *sim-time sampler*: the engine calls
//! [`Registry::maybe_sample`] after every executed event, and on a sample
//! tick the registry appends the current value of every gauge and every
//! registered poll closure to a bounded series. When the bound is hit the
//! series are decimated 2:1 and the cadence doubles, so memory stays
//! constant however long the run is.
//!
//! **Poll closures must not call back into the registry** — they run with
//! the registry lock held. They should only read component state (safe
//! under the engine's strict event/process alternation).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::metrics::Counter;

/// Linear buckets below this value (exact: one bucket per integer).
const LINEAR_MAX: u64 = 16;
/// Sub-buckets per octave above the linear range; 16 ⇒ ≤ 6.25% relative
/// bucket width, i.e. quantiles are exact to within 1/16 of an octave.
const SUB_BUCKETS: usize = 16;
/// Total buckets needed to cover all of `u64` (16 linear + 60 octaves).
const NUM_BUCKETS: usize = 976;

/// Bucket index for a value (log-linear, HDR-style).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        // Highest set bit m >= 4; drop to 4 significant bits + group.
        let g = (63 - v.leading_zeros()) - 4;
        LINEAR_MAX as usize + (g as usize) * SUB_BUCKETS + (((v >> g) as usize) & 0xF)
    }
}

/// Smallest value mapping to bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        i as u64
    } else {
        let g = ((i - LINEAR_MAX as usize) / SUB_BUCKETS) as u32;
        let sub = ((i - LINEAR_MAX as usize) % SUB_BUCKETS) as u64;
        (LINEAR_MAX + sub) << g
    }
}

/// Largest value mapping to bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        i as u64
    } else {
        let g = ((i - LINEAR_MAX as usize) / SUB_BUCKETS) as u32;
        bucket_lower(i) + ((1u64 << g) - 1)
    }
}

/// A signed instantaneous value (queue depth, credits outstanding, live
/// connections). Sampled into a time series by the registry.
#[derive(Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.v.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A log-linear histogram over `u64` values (typically nanoseconds):
/// exact buckets below 16, then 16 sub-buckets per power of two, so any
/// recorded quantile is exact to within 6.25% of its value. Covers the
/// full `u64` range with a fixed 976-slot table; recording is five
/// relaxed atomic operations and never allocates.
pub struct LogLinHistogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl LogLinHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogLinHistogram {
            // Box the array directly; Vec round-trip avoids a large stack
            // temporary in debug builds.
            buckets: (0..NUM_BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice()
                .try_into()
                .unwrap_or_else(|_| unreachable!("length is NUM_BUCKETS")),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy (sparse: only non-empty buckets).
    pub fn snapshot(&self) -> HistSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u32, c));
            }
        }
        HistSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for LogLinHistogram {
    fn default() -> Self {
        LogLinHistogram::new()
    }
}

/// Immutable copy of a [`LogLinHistogram`]: sparse `(bucket, count)`
/// pairs in ascending bucket order, plus exact count/sum/min/max.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Non-empty buckets as `(bucket index, count)`, ascending.
    pub buckets: Vec<(u32, u64)>,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistSnapshot {
    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate (`q` in `[0, 1]`): the upper bound of the bucket
    /// holding the ⌈q·count⌉-th smallest value, clamped to the observed
    /// `max`. Always within one log-linear bucket (≤ 6.25%) of the true
    /// sorted-sample quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_upper(i as usize).min(self.max);
            }
        }
        self.max
    }

    /// Merge another snapshot into this one. Merging snapshots of two
    /// streams yields exactly the snapshot of the concatenated stream.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Where a time-series point comes from at each sample tick.
enum Source {
    /// Read an atomic gauge.
    Gauge(Arc<Gauge>),
    /// Call a closure with the current sim time (ns). Must not call back
    /// into the registry, and must not block: `None` skips this tick
    /// (components read their own state with `try_lock`, because a
    /// process can legitimately be parked mid-call holding its lock when
    /// the engine-side sampler fires).
    Poll(Box<dyn Fn(u64) -> Option<i64> + Send>),
}

struct SeriesSlot {
    source: Source,
    points: Vec<(u64, i64)>,
}

struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<LogLinHistogram>>,
    series: BTreeMap<String, SeriesSlot>,
    /// Sampling cadence in sim nanoseconds; doubles on decimation.
    every_ns: u64,
    /// Sample ticks taken since the last decimation.
    samples: u64,
}

/// Default sampling cadence: one tick per 100 µs of simulated time.
pub const DEFAULT_SAMPLE_EVERY_NS: u64 = 100_000;
/// Maximum points per series before 2:1 decimation kicks in.
const SERIES_CAP: u64 = 512;

/// The per-simulation telemetry registry: named counters, gauges,
/// log-linear histograms, and sampled time series. Get-or-create lookups
/// return shared handles; hot paths should cache the `Arc` and touch the
/// registry map only once.
pub struct Registry {
    inner: Mutex<Inner>,
    /// Next sim instant at which to take a sample — the sampler fast path
    /// is one relaxed load of this.
    next_sample_ns: AtomicU64,
}

impl Registry {
    /// A fresh registry. Automatically registers the
    /// `host.wall_us_per_sim_s` series (host wall-clock microseconds spent
    /// per simulated second — the harness-efficiency metric), which is the
    /// only non-deterministic entry and is excluded from
    /// [`RegistrySnapshot::deterministic_text`].
    pub fn new() -> Arc<Registry> {
        let reg = Arc::new(Registry {
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
                series: BTreeMap::new(),
                every_ns: DEFAULT_SAMPLE_EVERY_NS,
                samples: 0,
            }),
            next_sample_ns: AtomicU64::new(DEFAULT_SAMPLE_EVERY_NS),
        });
        let born = Instant::now();
        reg.register_sampled("host.wall_us_per_sim_s", move |now_ns| {
            if now_ns == 0 {
                return Some(0);
            }
            let wall_us = born.elapsed().as_micros();
            Some((wall_us * 1_000_000_000 / now_ns as u128) as i64)
        });
        reg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get or create a named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(self.lock().counters.entry(name.to_string()).or_default())
    }

    /// Get or create a named gauge. Gauges are automatically sampled into
    /// a time series of the same name.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut g = self.lock();
        let gauge = Arc::clone(g.gauges.entry(name.to_string()).or_default());
        g.series
            .entry(name.to_string())
            .or_insert_with(|| SeriesSlot {
                source: Source::Gauge(Arc::clone(&gauge)),
                points: Vec::new(),
            });
        gauge
    }

    /// Get or create a named log-linear histogram.
    pub fn histogram(&self, name: &str) -> Arc<LogLinHistogram> {
        Arc::clone(self.lock().histograms.entry(name.to_string()).or_default())
    }

    /// Register a poll closure sampled into a time series under `name`.
    /// First registration wins; duplicates are ignored (components
    /// registering lazily on first activity may race benignly). The
    /// closure receives the sample's sim time in nanoseconds and must not
    /// call back into this registry or block: return `None` (e.g. on a
    /// failed `try_lock`) to skip the tick — a parked process may hold
    /// the component's lock when the sampler fires.
    pub fn register_sampled<F>(&self, name: &str, f: F)
    where
        F: Fn(u64) -> Option<i64> + Send + 'static,
    {
        self.lock()
            .series
            .entry(name.to_string())
            .or_insert_with(|| SeriesSlot {
                source: Source::Poll(Box::new(f)),
                points: Vec::new(),
            });
    }

    /// True if a series under `name` already exists (used by lazy
    /// registration guards).
    pub fn has_series(&self, name: &str) -> bool {
        self.lock().series.contains_key(name)
    }

    /// Override the sampling cadence (tests and short benches). Resets the
    /// next-sample deadline to the new cadence.
    pub fn set_sample_every_ns(&self, every_ns: u64) {
        let every = every_ns.max(1);
        self.lock().every_ns = every;
        self.next_sample_ns.store(every, Ordering::Relaxed);
    }

    /// Sampler entry point, called by the engine after each executed
    /// event. Fast path: one relaxed atomic load.
    #[inline]
    pub fn maybe_sample(&self, now_ns: u64) {
        if now_ns >= self.next_sample_ns.load(Ordering::Relaxed) {
            self.sample_now(now_ns);
        }
    }

    /// Take one sample tick unconditionally (also used by `empstat` to
    /// capture a final data point before rendering).
    pub fn sample_now(&self, now_ns: u64) {
        let mut g = self.lock();
        for slot in g.series.values_mut() {
            let v = match &slot.source {
                Source::Gauge(gauge) => Some(gauge.get()),
                Source::Poll(f) => f(now_ns),
            };
            if let Some(v) = v {
                slot.points.push((now_ns, v));
            }
        }
        g.samples += 1;
        if g.samples >= SERIES_CAP {
            // Bound memory: drop every other point everywhere and sample
            // half as often from here on.
            for slot in g.series.values_mut() {
                let mut i = 0usize;
                slot.points.retain(|_| {
                    let keep = i.is_multiple_of(2);
                    i += 1;
                    keep
                });
            }
            g.samples /= 2;
            g.every_ns = g.every_ns.saturating_mul(2);
        }
        let every = g.every_ns;
        self.next_sample_ns.store(
            (now_ns / every + 1).saturating_mul(every),
            Ordering::Relaxed,
        );
    }

    /// Point-in-time copy of everything in the registry.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let g = self.lock();
        RegistrySnapshot {
            counters: g
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: g.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            series: g
                .series
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        SeriesSnapshot {
                            every_ns: g.every_ns,
                            points: s.points.clone(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// One sampled time series.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Sampling cadence in sim ns at snapshot time (doubles on decimation).
    pub every_ns: u64,
    /// `(sim time ns, value)` points in ascending time order.
    pub points: Vec<(u64, i64)>,
}

/// Point-in-time copy of a [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// Counter values by dotted name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by dotted name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by dotted name.
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Sampled time series by dotted name.
    pub series: BTreeMap<String, SeriesSnapshot>,
}

const QUANTILES: [(f64, &str); 4] = [(0.50, "p50"), (0.90, "p90"), (0.99, "p99"), (0.999, "p999")];

impl RegistrySnapshot {
    /// Render as an `ss`/`netstat`-style aligned table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.histograms.is_empty() {
            out.push_str("HISTOGRAMS\n");
            let w = self.histograms.keys().map(|k| k.len()).max().unwrap_or(0);
            let _ = writeln!(
                out,
                "  {:w$}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
                "name", "count", "min", "p50", "p90", "p99", "p999", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:w$}  {:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
                    name,
                    h.count,
                    h.min,
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                    h.quantile(0.999),
                    h.max,
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("COUNTERS\n");
            let w = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:w$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("GAUGES\n");
            let w = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:w$}  {v}");
            }
        }
        if !self.series.is_empty() {
            out.push_str("SERIES\n");
            let w = self.series.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, s) in &self.series {
                let (min, max, last) = series_stats(&s.points);
                let _ = writeln!(
                    out,
                    "  {name:w$}  points={} min={min} max={max} last={last}",
                    s.points.len(),
                );
            }
        }
        out
    }

    /// Render in Prometheus text exposition format. Dots in names become
    /// underscores; histograms expose `_bucket{le=...}` / `_sum` /
    /// `_count`, series expose their last value.
    pub fn render_prom(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
        }
        for (name, s) in &self.series {
            if self.gauges.contains_key(name) {
                continue; // already exported as the gauge's value
            }
            if let Some(&(_, last)) = s.points.last() {
                let n = prom_name(name);
                let _ = writeln!(out, "# TYPE {n} gauge\n{n} {last}");
            }
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for &(i, c) in &h.buckets {
                cum += c;
                let _ = writeln!(
                    out,
                    "{n}_bucket{{le=\"{}\"}} {cum}",
                    bucket_upper(i as usize)
                );
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cum}");
            let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", h.sum, h.count);
        }
        out
    }

    /// Render as JSON (hand-rolled; the workspace carries no JSON deps).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_map(
            &mut out,
            self.counters.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\n  \"gauges\": {");
        push_map(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\n  \"histograms\": {");
        push_map(
            &mut out,
            self.histograms.iter().map(|(k, h)| {
                let mut s = format!(
                    "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}",
                    h.count, h.sum, h.min, h.max
                );
                for (q, label) in QUANTILES {
                    let _ = write!(s, ", \"{label}\": {}", h.quantile(q));
                }
                s.push('}');
                (k, s)
            }),
        );
        out.push_str("},\n  \"series\": {");
        push_map(
            &mut out,
            self.series.iter().map(|(k, s)| {
                let pts: Vec<String> = s
                    .points
                    .iter()
                    .map(|&(t, v)| format!("[{t}, {v}]"))
                    .collect();
                (
                    k,
                    format!(
                        "{{\"every_ns\": {}, \"points\": [{}]}}",
                        s.every_ns,
                        pts.join(", ")
                    ),
                )
            }),
        );
        out.push_str("}\n}\n");
        out
    }

    /// Deterministic rendering: every counter, gauge, histogram bucket and
    /// series point whose name does not start with `host.` (the only
    /// wall-clock-dependent namespace). Two same-seed runs must produce
    /// byte-identical output — tested in the bench crate.
    pub fn deterministic_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            if name.starts_with("host.") {
                continue;
            }
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            if name.starts_with("host.") {
                continue;
            }
            let _ = writeln!(out, "gauge {name} {v}");
        }
        for (name, h) in &self.histograms {
            if name.starts_with("host.") {
                continue;
            }
            let _ = writeln!(
                out,
                "hist {name} count={} sum={} min={} max={} buckets={:?}",
                h.count, h.sum, h.min, h.max, h.buckets
            );
        }
        for (name, s) in &self.series {
            if name.starts_with("host.") {
                continue;
            }
            let _ = writeln!(out, "series {name} every={} {:?}", s.every_ns, s.points);
        }
        out
    }
}

fn series_stats(points: &[(u64, i64)]) -> (i64, i64, i64) {
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    for &(_, v) in points {
        min = min.min(v);
        max = max.max(v);
    }
    if points.is_empty() {
        (0, 0, 0)
    } else {
        (min, max, points[points.len() - 1].1)
    }
}

fn prom_name(name: &str) -> String {
    name.replace('.', "_")
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let body: Vec<String> = entries.map(|(k, v)| format!("\"{k}\": {v}")).collect();
    out.push_str(&body.join(", "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_roundtrip() {
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            63,
            64,
            100,
            1_000,
            65_535,
            1 << 40,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(
                bucket_lower(i) <= v && v <= bucket_upper(i),
                "v={v} idx={i} lo={} hi={}",
                bucket_lower(i),
                bucket_upper(i)
            );
        }
        // Adjacent buckets tile the space with no gaps or overlaps.
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_upper(i) + 1, bucket_lower(i + 1), "bucket {i}");
        }
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_extremes_and_quantiles() {
        let h = LogLinHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.50);
        // True p50 is 500; bucket width there is 32, so the estimate must
        // land in [500, 531].
        assert!((500..=531).contains(&p50), "p50={p50}");
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(s.quantile(0.0), bucket_upper(bucket_index(1)));
    }

    #[test]
    fn merged_snapshots_match_merged_stream() {
        let (a, b, all) = (
            LogLinHistogram::new(),
            LogLinHistogram::new(),
            LogLinHistogram::new(),
        );
        for v in [3u64, 17, 17, 900, 70_000] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 17, 400_000] {
            b.record(v);
            all.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, all.snapshot());
    }

    #[test]
    fn registry_get_or_create_shares_handles() {
        let r = Registry::new();
        r.counter("x.a").inc();
        r.counter("x.a").add(2);
        assert_eq!(r.counter("x.a").get(), 3);
        r.gauge("x.g").set(7);
        assert_eq!(r.gauge("x.g").get(), 7);
        r.histogram("x.h").record(42);
        assert_eq!(r.histogram("x.h").count(), 1);
    }

    #[test]
    fn sampler_samples_gauges_and_polls_on_cadence() {
        let r = Registry::new();
        r.set_sample_every_ns(100);
        let g = r.gauge("t.depth");
        r.register_sampled("t.poll", |now| Some((now / 10) as i64));
        r.register_sampled("t.skip", |_| None);
        g.set(5);
        r.maybe_sample(50); // below cadence: no sample
        r.maybe_sample(100);
        g.set(9);
        r.maybe_sample(150); // below next deadline (200)
        r.maybe_sample(250);
        let snap = r.snapshot();
        assert_eq!(snap.series["t.depth"].points, vec![(100, 5), (250, 9)]);
        assert_eq!(snap.series["t.poll"].points, vec![(100, 10), (250, 25)]);
        // A closure returning None (component lock busy) skips the tick.
        assert_eq!(snap.series["t.skip"].points, vec![]);
    }

    #[test]
    fn series_decimate_and_cadence_doubles_at_cap() {
        let r = Registry::new();
        r.set_sample_every_ns(10);
        let g = r.gauge("t.v");
        for i in 0..SERIES_CAP + 10 {
            g.set(i as i64);
            r.sample_now(i * 10);
        }
        let snap = r.snapshot();
        let pts = &snap.series["t.v"].points;
        assert!(pts.len() < SERIES_CAP as usize, "len={}", pts.len());
        assert_eq!(snap.series["t.v"].every_ns, 20);
        // Decimation keeps time order.
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn renders_include_all_sections() {
        let r = Registry::new();
        r.counter("a.c").inc();
        r.gauge("a.g").set(-3);
        r.histogram("a.h").record(1234);
        r.sample_now(1000);
        let snap = r.snapshot();
        let table = snap.render_table();
        for needle in ["HISTOGRAMS", "COUNTERS", "GAUGES", "SERIES", "a.h", "p999"] {
            assert!(table.contains(needle), "table missing {needle}:\n{table}");
        }
        let prom = snap.render_prom();
        for needle in ["a_c 1", "a_g -3", "a_h_count 1", "le=\"+Inf\""] {
            assert!(prom.contains(needle), "prom missing {needle}:\n{prom}");
        }
        let json = snap.to_json();
        for needle in ["\"a.c\": 1", "\"p99\":", "\"every_ns\"", "\"series\""] {
            assert!(json.contains(needle), "json missing {needle}:\n{json}");
        }
    }

    #[test]
    fn deterministic_text_excludes_host_namespace() {
        let r = Registry::new();
        r.counter("a.c").inc();
        r.sample_now(5_000_000_000); // host series definitely non-zero
        let d = r.snapshot().deterministic_text();
        assert!(d.contains("counter a.c 1"));
        assert!(!d.contains("host."), "host.* leaked into {d}");
        assert!(r.snapshot().series.contains_key("host.wall_us_per_sim_s"));
    }
}
