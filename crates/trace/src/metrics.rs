//! Counters, fixed-bucket histograms, and the snapshot API.
//!
//! Every event recorded through a [`crate::Tracer`] bumps a per-kind
//! counter automatically, and the duration-carrying kinds (`FwTask`,
//! `DmaCopy`, `SubstrateCopy`) feed fixed-bucket histograms — so a
//! traced run yields per-layer metrics with no extra plumbing. Layers
//! can also register their own named counters and histograms.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::event::{EventKind, ALL_KINDS, KIND_COUNT};

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed, ascending bucket bounds, plus an overflow
/// bucket; also tracks count/sum/min/max exactly.
pub struct Histogram {
    bounds: Box<[u64]>,
    /// One slot per bound plus the overflow bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A histogram counting values `v <= bounds[i]` into bucket `i`
    /// (first matching bound), larger values into the overflow bucket.
    /// `bounds` must be non-empty and strictly ascending.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Counts per bound, plus the trailing overflow bucket.
    pub buckets: Vec<u64>,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket containing the q-th value, or `max` for the overflow bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds.get(i).copied().unwrap_or(self.max);
            }
        }
        self.max
    }
}

struct Registered {
    counters: BTreeMap<String, Arc<Counter>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// The per-simulation metrics registry.
pub struct Metrics {
    /// One counter per [`EventKind`], bumped automatically on emit.
    kind_counts: [Counter; KIND_COUNT],
    /// Durations (ns) of firmware tasks / DMA copies / substrate copies.
    fw_task_ns: Histogram,
    dma_copy_ns: Histogram,
    substrate_copy_ns: Histogram,
    registered: Mutex<Registered>,
}

/// Bucket bounds (ns) for the built-in duration histograms: sub-µs
/// resolution at the bottom, decade steps above.
const DURATION_BOUNDS_NS: [u64; 10] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 100_000, 1_000_000,
];

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics {
            kind_counts: std::array::from_fn(|_| Counter::new()),
            fw_task_ns: Histogram::new(&DURATION_BOUNDS_NS),
            dma_copy_ns: Histogram::new(&DURATION_BOUNDS_NS),
            substrate_copy_ns: Histogram::new(&DURATION_BOUNDS_NS),
            registered: Mutex::new(Registered {
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
            }),
        }
    }

    /// Called by the tracer for every recorded event.
    #[inline]
    pub(crate) fn count_kind(&self, kind: EventKind, a: u64, b: u64) {
        self.kind_counts[kind as usize].inc();
        match kind {
            EventKind::FwTask => self.fw_task_ns.record(a),
            EventKind::DmaCopy => self.dma_copy_ns.record(b),
            EventKind::SubstrateCopy => self.substrate_copy_ns.record(b),
            _ => {
                let _ = (a, b);
            }
        }
    }

    /// Occurrences of `kind` recorded so far.
    pub fn kind_count(&self, kind: EventKind) -> u64 {
        self.kind_counts[kind as usize].get()
    }

    /// Get or create a named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut reg = self
            .registered
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(reg.counters.entry(name.to_string()).or_default())
    }

    /// Get or create a named histogram with the given bucket bounds.
    /// Bounds are fixed at first registration.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut reg = self
            .registered
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            reg.histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let reg = self
            .registered
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut counters: BTreeMap<String, u64> = ALL_KINDS
            .iter()
            .map(|&k| (k.name().to_string(), self.kind_count(k)))
            .filter(|(_, v)| *v > 0)
            .collect();
        for (name, c) in &reg.counters {
            counters.insert(name.clone(), c.get());
        }
        let mut histograms = BTreeMap::new();
        for (name, h) in [
            ("nic/fw_task_ns", &self.fw_task_ns),
            ("nic/dma_copy_ns", &self.dma_copy_ns),
            ("sock/substrate_copy_ns", &self.substrate_copy_ns),
        ] {
            let snap = h.snapshot();
            if snap.count > 0 {
                histograms.insert(name.to_string(), snap);
            }
        }
        for (name, h) in &reg.histograms {
            histograms.insert(name.clone(), h.snapshot());
        }
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// Point-in-time copy of a [`Metrics`] registry.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values by `layer/name`.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states by `layer/name`.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Render as an aligned plain-text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:width$}  {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: count={} mean={:.0} min={} p50={} p99={} max={}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.max,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_quantiles_and_extremes() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 5, 10, 11, 100, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![3, 2, 0, 1]);
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5000);
        assert_eq!(s.quantile(0.5), 10);
        assert_eq!(s.quantile(1.0), 5000);
        assert!((s.mean() - 5127.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn registry_counters_are_shared_and_snapshot() {
        let m = Metrics::new();
        let c1 = m.counter("sock/test_counter");
        let c2 = m.counter("sock/test_counter");
        c1.inc();
        c2.add(2);
        assert_eq!(m.counter("sock/test_counter").get(), 3);
        let h = m.histogram("sock/test_hist", &[10, 20]);
        h.record(15);
        let snap = m.snapshot();
        assert_eq!(snap.counters["sock/test_counter"], 3);
        assert_eq!(snap.histograms["sock/test_hist"].count, 1);
        let text = snap.render_text();
        assert!(text.contains("sock/test_counter") && text.contains("sock/test_hist"));
    }
}
