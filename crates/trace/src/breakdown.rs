//! Latency breakdown: the paper's §7 accounting as data.
//!
//! The decomposition works by *tiling*: the interval between the first
//! `SockWriteStart` and the last `SockReadEnd` in the trace is cut at
//! every milestone event, and each gap is attributed to the stage that
//! ends at its closing milestone:
//!
//! | gap ends at       | stage          |
//! |-------------------|----------------|
//! | `TxDoorbell`      | host overhead  |
//! | `NicTxWire`       | NIC firmware   |
//! | `NicRxStart`      | wire           |
//! | `RecvDeliver`     | NIC firmware   |
//! | `SockReadEnd`     | host overhead  |
//! | `SockWriteStart`  | host overhead  |
//!
//! Because the gaps partition the interval, the stages sum to the
//! measured wall time *exactly* — no double counting, no leakage. Two
//! refinements then move time between stages without breaking the sum:
//! `DmaCopy` durations shift NIC-firmware time into the DMA stage, and
//! `SubstrateCopy` durations shift host time into the substrate-copy
//! stage.
//!
//! The attribution assumes a closed-loop exchange (one side active at a
//! time, like a pingpong); under pipelined traffic the gaps still
//! partition wall time but a gap may cover concurrent activity from
//! more than one stage.

use std::fmt::Write as _;

use crate::event::{EventKind, TraceEvent};

/// Where a slice of wall time went.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Host-side software: descriptor builds, syscalls, doorbells,
    /// completion polling, application turnaround.
    Host,
    /// NIC firmware processing (tag match walks, frame handling).
    NicFirmware,
    /// PCI DMA transfers between host memory and the NIC.
    Dma,
    /// Serialization, propagation, and switch fabric time.
    Wire,
    /// Substrate buffer copies (bounce-buffer sends, staging reads).
    SubstrateCopy,
}

/// All stages in display order.
pub const STAGES: [Stage; 5] = [
    Stage::Host,
    Stage::NicFirmware,
    Stage::Dma,
    Stage::Wire,
    Stage::SubstrateCopy,
];

impl Stage {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Host => "host overhead",
            Stage::NicFirmware => "nic firmware",
            Stage::Dma => "dma",
            Stage::Wire => "wire",
            Stage::SubstrateCopy => "substrate copy",
        }
    }

    /// The stage a tiling gap belongs to, keyed by its closing milestone.
    pub(crate) fn for_closing_milestone(kind: EventKind) -> Option<Stage> {
        match kind {
            EventKind::TxDoorbell | EventKind::SockReadEnd | EventKind::SockWriteStart => {
                Some(Stage::Host)
            }
            EventKind::NicTxWire | EventKind::RecvDeliver => Some(Stage::NicFirmware),
            EventKind::NicRxStart => Some(Stage::Wire),
            _ => None,
        }
    }
}

/// The result of decomposing a trace window into stages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Breakdown {
    /// Window start: first `SockWriteStart` timestamp.
    pub start_ns: u64,
    /// Window end: last `SockReadEnd` timestamp.
    pub end_ns: u64,
    /// Nanoseconds attributed to each stage, indexed like [`STAGES`].
    pub stage_ns: [u64; 5],
    /// Number of one-way message legs (`SockReadEnd` milestones) seen.
    pub legs: u64,
}

impl Breakdown {
    /// Decompose `events` (any order). Returns `None` when the trace
    /// holds no complete `SockWriteStart .. SockReadEnd` window.
    pub fn compute(events: &[TraceEvent]) -> Option<Breakdown> {
        let mut milestones: Vec<&TraceEvent> =
            events.iter().filter(|e| e.kind.is_milestone()).collect();
        milestones.sort_by_key(|e| e.t_ns);
        let start_ns = milestones
            .iter()
            .find(|e| e.kind == EventKind::SockWriteStart)
            .map(|e| e.t_ns)?;
        let end_ns = milestones
            .iter()
            .rev()
            .find(|e| e.kind == EventKind::SockReadEnd)
            .map(|e| e.t_ns)?;
        if end_ns <= start_ns {
            return None;
        }

        let mut stage_ns = [0u64; 5];
        let mut legs = 0u64;
        let mut prev = start_ns;
        for m in &milestones {
            if m.t_ns < start_ns || m.t_ns > end_ns {
                continue;
            }
            if m.kind == EventKind::SockReadEnd {
                legs += 1;
            }
            let gap = m.t_ns - prev;
            if gap > 0 {
                let stage = Stage::for_closing_milestone(m.kind)
                    .expect("milestone kinds all map to a stage");
                stage_ns[stage as usize] += gap;
            }
            prev = m.t_ns;
        }

        // Refinements: move sub-span durations into their own stages.
        // Clamping keeps the invariant `sum(stage_ns) == end - start` even
        // if a cost event leaks past the window edge.
        let in_window = |e: &&TraceEvent| e.t_ns >= start_ns && e.t_ns <= end_ns;
        let dma: u64 = events
            .iter()
            .filter(|e| e.kind == EventKind::DmaCopy)
            .filter(in_window)
            .map(|e| e.b)
            .sum();
        let dma = dma.min(stage_ns[Stage::NicFirmware as usize]);
        stage_ns[Stage::NicFirmware as usize] -= dma;
        stage_ns[Stage::Dma as usize] += dma;

        let copy: u64 = events
            .iter()
            .filter(|e| e.kind == EventKind::SubstrateCopy)
            .filter(in_window)
            .map(|e| e.b)
            .sum();
        let copy = copy.min(stage_ns[Stage::Host as usize]);
        stage_ns[Stage::Host as usize] -= copy;
        stage_ns[Stage::SubstrateCopy as usize] += copy;

        Some(Breakdown {
            start_ns,
            end_ns,
            stage_ns,
            legs,
        })
    }

    /// Length of the decomposed window; equals the sum of the stages.
    pub fn total_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Nanoseconds attributed to `stage`.
    pub fn stage(&self, stage: Stage) -> u64 {
        self.stage_ns[stage as usize]
    }

    /// Mean round-trip time, treating every two legs as one RTT.
    pub fn mean_rtt_ns(&self) -> Option<f64> {
        if self.legs < 2 {
            return None;
        }
        Some(self.total_ns() as f64 / (self.legs as f64 / 2.0))
    }

    /// Render the paper-§7-style attribution table.
    pub fn text_report(&self) -> String {
        let total = self.total_ns().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "latency breakdown over {:.3} us ({} legs):",
            self.total_ns() as f64 / 1e3,
            self.legs,
        );
        for stage in STAGES {
            let ns = self.stage(stage);
            let _ = writeln!(
                out,
                "  {:<14} {:>10.3} us  {:>5.1}%",
                stage.name(),
                ns as f64 / 1e3,
                ns as f64 * 100.0 / total as f64,
            );
        }
        let _ = writeln!(
            out,
            "  {:<14} {:>10.3} us  100.0%",
            "total",
            total as f64 / 1e3
        );
        if let Some(rtt) = self.mean_rtt_ns() {
            let _ = writeln!(out, "  mean rtt       {:>10.3} us", rtt / 1e3);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_CONN;

    fn m(t: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            node: 0,
            conn: NO_CONN,
            kind,
            a: 0,
            b: 0,
        }
    }

    fn one_leg(base: u64) -> Vec<TraceEvent> {
        vec![
            m(base, EventKind::SockWriteStart),
            m(base + 100, EventKind::TxDoorbell),   // 100 host
            m(base + 350, EventKind::NicTxWire),    // 250 nic fw
            m(base + 1050, EventKind::NicRxStart),  // 700 wire
            m(base + 1250, EventKind::RecvDeliver), // 200 nic fw
            m(base + 1400, EventKind::SockReadEnd), // 150 host
        ]
    }

    #[test]
    fn stages_tile_the_window_exactly() {
        let mut events = one_leg(1000);
        events.extend(one_leg(2400)); // return leg starts at the read end
        let b = Breakdown::compute(&events).expect("complete window");
        assert_eq!(b.start_ns, 1000);
        assert_eq!(b.end_ns, 3800);
        assert_eq!(b.total_ns(), 2800);
        assert_eq!(b.stage_ns.iter().sum::<u64>(), b.total_ns());
        assert_eq!(b.legs, 2);
        assert_eq!(b.stage(Stage::Wire), 1400);
        assert_eq!(b.stage(Stage::NicFirmware), 900);
        assert_eq!(b.mean_rtt_ns(), Some(2800.0));
    }

    #[test]
    fn dma_and_copy_refinements_conserve_the_sum() {
        let mut events = one_leg(0);
        events.push(TraceEvent {
            t_ns: 200,
            node: 0,
            conn: NO_CONN,
            kind: EventKind::DmaCopy,
            a: 64,
            b: 120,
        });
        events.push(TraceEvent {
            t_ns: 1300,
            node: 1,
            conn: NO_CONN,
            kind: EventKind::SubstrateCopy,
            a: 64,
            b: 40,
        });
        let b = Breakdown::compute(&events).expect("complete window");
        assert_eq!(b.stage(Stage::Dma), 120);
        assert_eq!(b.stage(Stage::NicFirmware), 450 - 120);
        assert_eq!(b.stage(Stage::SubstrateCopy), 40);
        assert_eq!(b.stage(Stage::Host), 250 - 40);
        assert_eq!(b.stage_ns.iter().sum::<u64>(), b.total_ns());
        let report = b.text_report();
        assert!(report.contains("wire") && report.contains("100.0%"));
    }

    #[test]
    fn incomplete_traces_yield_none() {
        assert!(Breakdown::compute(&[]).is_none());
        assert!(Breakdown::compute(&[m(5, EventKind::SockWriteStart)]).is_none());
        assert!(Breakdown::compute(&[m(5, EventKind::SockReadEnd)]).is_none());
    }
}
