//! Typed trace events and the per-simulation ring buffer that stores them.

use std::sync::{Arc, Mutex, PoisonError};

use crate::metrics::Metrics;
use crate::ENABLED;

/// Sentinel connection id for events not tied to a connection.
pub const NO_CONN: u32 = u32::MAX;

/// Sentinel node id for events with no single originating station.
pub const NO_NODE: u16 = u16::MAX;

/// What happened. Grouped by the layer that emits it; the `a`/`b`
/// payload meaning is per-kind (documented inline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    // --- NIC descriptor lifecycle (emp-proto) ---
    /// A receive descriptor was inserted. `a` = descriptor id.
    DescPost,
    /// A message consumed a preposted descriptor. `a` = descriptor id, `b` = bytes.
    DescConsume,
    /// A descriptor was explicitly unposted. `a` = descriptor id.
    DescUnpost,
    // --- Credit flow control (core) ---
    /// The sender regained credits from a flow-control ack. `a` = credits.
    CreditGrant,
    /// The sender blocked with zero credits.
    CreditStall,
    /// The receiver returned credits via an explicit flow-control ack. `a` = credits.
    CreditReturn,
    // --- Substrate acks (core) ---
    /// An explicit flow-control ack message was sent. `a` = credits.
    AckSent,
    /// An ack became due but was withheld for piggybacking (§6.3). `a` = credits accrued.
    AckDelayed,
    /// A due ack rode on an outgoing data message (§6.1). `a` = credits.
    AckPiggybacked,
    // --- Rendezvous datagrams (core) ---
    /// A rendezvous request was sent for an oversized datagram. `a` = bytes.
    RndvRequest,
    /// A rendezvous grant (ack) was issued. `a` = bytes granted.
    RndvAck,
    /// Rendezvous payload data was sent after the grant. `a` = bytes.
    RndvData,
    // --- Unexpected queue (emp-proto) ---
    /// A message landed in the unexpected queue. `a` = bytes.
    UqHit,
    /// The unexpected queue was full; the message was dropped. `a` = bytes.
    UqOverflow,
    // --- Wire (simnet link/switch) ---
    /// First bit of a frame hit a link. `a` = payload bytes, `b` = destination node.
    WireTx,
    /// Last bit of a frame arrived at a sink. `a` = payload bytes, `b` = source node.
    WireRx,
    /// The switch fabric forwarded (or flooded) a frame. `a` = payload bytes.
    SwitchForward,
    /// A frame was dropped (loss injection or no matching descriptor). `a` = bytes.
    FrameDrop,
    /// The reliability layer retransmitted a frame. `a` = attempt number.
    Retransmit,
    // --- Cost sub-spans (used to refine the breakdown) ---
    /// A firmware CPU task ran. `a` = cost ns, `b` = start ns.
    FwTask,
    /// NIC DMA moved bytes across the PCI bus. `a` = bytes, `b` = duration ns.
    DmaCopy,
    /// The substrate copied payload between user and staging buffers.
    /// `a` = bytes, `b` = duration ns.
    SubstrateCopy,
    // --- Latency-breakdown milestones (core + emp-proto) ---
    /// A socket-level write entered the substrate. `a` = bytes.
    SockWriteStart,
    /// The host rang the NIC doorbell for a send (host costs paid).
    TxDoorbell,
    /// The NIC handed the message's first frame to the wire. `a` = bytes.
    NicTxWire,
    /// The last bit of a data frame arrived at the destination NIC. `a` = bytes.
    NicRxStart,
    /// The receive completed on the destination host (completion posted). `a` = bytes.
    RecvDeliver,
    /// A socket-level read returned data to the application. `a` = bytes.
    SockReadEnd,
    // --- Fault injection (simnet/tigon-nic/emp-proto) ---
    /// A frame was corrupted on the wire (occupied the link, failed FCS,
    /// never delivered). `a` = payload bytes.
    FrameCorrupt,
    /// A frame was delayed by reorder/jitter injection past its natural
    /// delivery time. `a` = payload bytes, `b` = extra delay ns.
    FrameReorder,
    /// A frame arrived while the link was in a scheduled down window. `a` = bytes.
    LinkDown,
    /// An injected NIC fault fired (rx-ring exhaustion or delayed DMA
    /// completion). `a` = 0 for rx-ring drop, 1 for DMA delay; `b` = bytes
    /// or delay ns respectively.
    NicFault,
    // --- Data-path fast paths (core) ---
    /// A stream read took an in-order message straight into the user
    /// buffer, skipping the §6.2 temp-buffer copy. `a` = bytes.
    DirectDeliver,
    /// A small write was staged in the coalescing buffer. `a` = bytes,
    /// `b` = staged bytes after the append.
    CoalesceAppend,
    /// The coalescing buffer flushed as one substrate message. `a` =
    /// bytes, `b` = writes aggregated.
    CoalesceFlush,
    /// A batch of receive descriptors was posted with one doorbell.
    /// `a` = descriptors in the batch.
    DescPostBatch,
}

/// Number of distinct [`EventKind`]s (for per-kind counter arrays).
pub(crate) const KIND_COUNT: usize = EventKind::DescPostBatch as usize + 1;

impl EventKind {
    /// Stable `layer/event` name used in metrics and trace exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::DescPost => "nic/desc_post",
            EventKind::DescConsume => "nic/desc_consume",
            EventKind::DescUnpost => "nic/desc_unpost",
            EventKind::CreditGrant => "sock/credit_grant",
            EventKind::CreditStall => "sock/credit_stall",
            EventKind::CreditReturn => "sock/credit_return",
            EventKind::AckSent => "sock/ack_sent",
            EventKind::AckDelayed => "sock/ack_delayed",
            EventKind::AckPiggybacked => "sock/ack_piggybacked",
            EventKind::RndvRequest => "sock/rndv_request",
            EventKind::RndvAck => "sock/rndv_ack",
            EventKind::RndvData => "sock/rndv_data",
            EventKind::UqHit => "nic/uq_hit",
            EventKind::UqOverflow => "nic/uq_overflow",
            EventKind::WireTx => "wire/tx",
            EventKind::WireRx => "wire/rx",
            EventKind::SwitchForward => "wire/switch_forward",
            EventKind::FrameDrop => "wire/frame_drop",
            EventKind::Retransmit => "nic/retransmit",
            EventKind::FwTask => "nic/fw_task",
            EventKind::DmaCopy => "nic/dma_copy",
            EventKind::SubstrateCopy => "sock/substrate_copy",
            EventKind::SockWriteStart => "path/sock_write_start",
            EventKind::TxDoorbell => "path/tx_doorbell",
            EventKind::NicTxWire => "path/nic_tx_wire",
            EventKind::NicRxStart => "path/nic_rx_start",
            EventKind::RecvDeliver => "path/recv_deliver",
            EventKind::SockReadEnd => "path/sock_read_end",
            EventKind::FrameCorrupt => "wire/frame_corrupt",
            EventKind::FrameReorder => "wire/frame_reorder",
            EventKind::LinkDown => "wire/link_down",
            EventKind::NicFault => "nic/fault",
            EventKind::DirectDeliver => "sock/direct_deliver",
            EventKind::CoalesceAppend => "sock/coalesce_append",
            EventKind::CoalesceFlush => "sock/coalesce_flush",
            EventKind::DescPostBatch => "nic/desc_post_batch",
        }
    }

    /// True for the milestone kinds the latency breakdown tiles between.
    pub fn is_milestone(self) -> bool {
        matches!(
            self,
            EventKind::SockWriteStart
                | EventKind::TxDoorbell
                | EventKind::NicTxWire
                | EventKind::NicRxStart
                | EventKind::RecvDeliver
                | EventKind::SockReadEnd
        )
    }
}

pub(crate) const ALL_KINDS: [EventKind; KIND_COUNT] = [
    EventKind::DescPost,
    EventKind::DescConsume,
    EventKind::DescUnpost,
    EventKind::CreditGrant,
    EventKind::CreditStall,
    EventKind::CreditReturn,
    EventKind::AckSent,
    EventKind::AckDelayed,
    EventKind::AckPiggybacked,
    EventKind::RndvRequest,
    EventKind::RndvAck,
    EventKind::RndvData,
    EventKind::UqHit,
    EventKind::UqOverflow,
    EventKind::WireTx,
    EventKind::WireRx,
    EventKind::SwitchForward,
    EventKind::FrameDrop,
    EventKind::Retransmit,
    EventKind::FwTask,
    EventKind::DmaCopy,
    EventKind::SubstrateCopy,
    EventKind::SockWriteStart,
    EventKind::TxDoorbell,
    EventKind::NicTxWire,
    EventKind::NicRxStart,
    EventKind::RecvDeliver,
    EventKind::SockReadEnd,
    EventKind::FrameCorrupt,
    EventKind::FrameReorder,
    EventKind::LinkDown,
    EventKind::NicFault,
    EventKind::DirectDeliver,
    EventKind::CoalesceAppend,
    EventKind::CoalesceFlush,
    EventKind::DescPostBatch,
];

/// One recorded event. Fixed-size and `Copy`: recording is a ring-buffer
/// store, never an allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time in nanoseconds. May be in the (simulated) future
    /// relative to recording time — e.g. a frame's wire-start while it
    /// queues behind earlier traffic — so consumers sort by this field.
    pub t_ns: u64,
    /// Originating station (`MacAddr` index), or [`NO_NODE`].
    pub node: u16,
    /// Connection id, or [`NO_CONN`] when not connection-scoped.
    pub conn: u32,
    /// What happened.
    pub kind: EventKind,
    /// Per-kind payload (see [`EventKind`] docs).
    pub a: u64,
    /// Per-kind payload (see [`EventKind`] docs).
    pub b: u64,
}

struct Ring {
    buf: Vec<TraceEvent>,
    /// Next write position once the buffer is full.
    next: usize,
    wrapped: bool,
    total: u64,
}

struct TracerInner {
    ring: Mutex<Ring>,
    metrics: Metrics,
    capacity: usize,
}

/// A shared handle to one simulation's event ring and metrics registry.
///
/// Cloning is an `Arc` bump; all clones observe the same ring. Recording
/// is a no-op (and emission sites should be gated on [`ENABLED`]) unless
/// the `trace` feature is on; the metrics registry works either way.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// Default ring capacity: enough for several thousand RTTs.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// A tracer whose ring keeps the most recent `capacity` events.
    /// No buffer memory is allocated until the first event is recorded.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer {
            inner: Arc::new(TracerInner {
                ring: Mutex::new(Ring {
                    buf: Vec::new(),
                    next: 0,
                    wrapped: false,
                    total: 0,
                }),
                metrics: Metrics::new(),
                capacity,
            }),
        }
    }

    /// A tracer with [`Tracer::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Tracer::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Record one event. Compiled to nothing when the `trace` feature is
    /// off; gate the call on [`ENABLED`] so argument construction
    /// disappears too.
    #[inline]
    pub fn emit(&self, t_ns: u64, node: u16, conn: u32, kind: EventKind, a: u64, b: u64) {
        if !ENABLED {
            return;
        }
        self.inner.metrics.count_kind(kind, a, b);
        let ev = TraceEvent {
            t_ns,
            node,
            conn,
            kind,
            a,
            b,
        };
        let mut ring = self.lock();
        ring.total += 1;
        if ring.buf.len() < self.inner.capacity {
            ring.buf.push(ev);
        } else {
            let next = ring.next;
            ring.buf[next] = ev;
            ring.next = (next + 1) % self.inner.capacity;
            ring.wrapped = true;
        }
    }

    /// The events currently retained, oldest first (ring order), sorted
    /// by timestamp (future-stamped events land in their proper place).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let ring = self.lock();
        let mut out = Vec::with_capacity(ring.buf.len());
        if ring.wrapped {
            out.extend_from_slice(&ring.buf[ring.next..]);
            out.extend_from_slice(&ring.buf[..ring.next]);
        } else {
            out.extend_from_slice(&ring.buf);
        }
        out.sort_by_key(|e| e.t_ns);
        out
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.lock().total
    }

    /// Events lost to ring overflow.
    pub fn dropped(&self) -> u64 {
        let ring = self.lock();
        ring.total - ring.buf.len() as u64
    }

    /// Discard all retained events (e.g. after a warmup phase), keeping
    /// metrics intact.
    pub fn clear(&self) {
        let mut ring = self.lock();
        ring.buf.clear();
        ring.next = 0;
        ring.wrapped = false;
        ring.total = 0;
    }

    /// The metrics registry attached to this tracer.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.inner
            .ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            node: 0,
            conn: NO_CONN,
            kind,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn ring_retains_most_recent_and_counts_drops() {
        let tr = Tracer::with_capacity(4);
        for t in 0..10u64 {
            tr.emit(t, 0, NO_CONN, EventKind::WireTx, 0, 0);
        }
        if ENABLED {
            let snap = tr.snapshot();
            assert_eq!(snap.len(), 4);
            assert_eq!(snap[0].t_ns, 6);
            assert_eq!(snap[3].t_ns, 9);
            assert_eq!(tr.total_recorded(), 10);
            assert_eq!(tr.dropped(), 6);
            tr.clear();
            assert!(tr.snapshot().is_empty());
        } else {
            assert!(tr.snapshot().is_empty());
            assert_eq!(tr.total_recorded(), 0);
        }
    }

    #[test]
    fn snapshot_sorts_future_stamped_events() {
        let tr = Tracer::with_capacity(8);
        tr.emit(50, 0, NO_CONN, EventKind::WireTx, 0, 0);
        tr.emit(10, 0, NO_CONN, EventKind::WireRx, 0, 0);
        if ENABLED {
            let snap = tr.snapshot();
            assert_eq!(snap[0], ev(10, EventKind::WireRx));
            assert_eq!(snap[1], ev(50, EventKind::WireTx));
        }
    }

    #[test]
    fn kind_names_are_unique_and_indexed() {
        let mut names: Vec<&str> = ALL_KINDS.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KIND_COUNT);
        for (i, k) in ALL_KINDS.iter().enumerate() {
            assert_eq!(*k as usize, i, "discriminant order matches ALL_KINDS");
        }
    }
}
