//! Cross-layer sim-time tracing and metrics for the EMP sockets testbed.
//!
//! The paper's argument (§7) is a *latency budget*: it explains every
//! figure by attributing microseconds to host overhead, NIC firmware,
//! DMA, and the wire. This crate makes that budget observable in the
//! reproduction:
//!
//! - [`Tracer`]: a bounded ring buffer of typed [`TraceEvent`]s, each
//!   stamped with a simulated-time nanosecond value, an originating node,
//!   and (where known) a connection id. One tracer is owned per
//!   simulation (by `simnet::SimShared`) and reached from any layer via
//!   `SimAccess::tracer()`. Recording is compiled to a no-op unless the
//!   `trace` cargo feature is on — gate emission sites on [`ENABLED`]
//!   so argument construction folds away too.
//! - [`Metrics`]: per-layer counters (every recorded event kind counts
//!   automatically) and fixed-bucket [`Histogram`]s with a snapshot API.
//! - [`Breakdown`]: decomposes a closed-loop exchange (e.g. a pingpong
//!   RTT) into host / NIC-firmware / DMA / wire / substrate-copy stages
//!   by *tiling* the interval between milestone events, so the stages
//!   sum to the measured wall interval exactly.
//! - [`chrome_trace_json`]: exports a trace as Chrome trace-event JSON,
//!   loadable in Perfetto or `chrome://tracing`; [`Breakdown::text_report`]
//!   renders the same data as a plain-text table.
//! - [`telemetry`]: the *always-on* observability layer — log-linear
//!   histograms with tail quantiles, gauges, sampled time series, and the
//!   cross-layer [`telemetry::Registry`]. Compiled unconditionally (unlike
//!   event tracing) and cheap enough to leave on in every build.
//!
//! This crate deliberately depends on nothing (events store raw
//! nanoseconds, not `SimTime`) so every layer of the stack — including
//! `simnet` itself — can depend on it without cycles.

mod breakdown;
mod chrome;
mod event;
mod metrics;
pub mod telemetry;

pub use breakdown::{Breakdown, Stage, STAGES};
pub use chrome::chrome_trace_json;
pub use event::{EventKind, TraceEvent, Tracer, NO_CONN, NO_NODE};
pub use metrics::{Counter, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot};

/// True when the `trace` cargo feature is enabled. A `const`, so
/// `if emp_trace::ENABLED { ... }` blocks at emission sites are removed
/// entirely by constant folding in untraced builds.
pub const ENABLED: bool = cfg!(feature = "trace");
