//! Property-based tests of the log-linear histogram: quantile estimates
//! must stay within the documented bucket bounds of the true sorted-sample
//! quantiles, and merging snapshots must equal snapshotting the merged
//! stream.

use emp_trace::telemetry::{bucket_lower, bucket_upper, HistSnapshot, LogLinHistogram};
use proptest::prelude::*;

/// The true quantile of a sample: the ⌈q·n⌉-th smallest value (matching
/// the histogram's rank convention).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// The histogram bucket holding `v` (recomputed from the public bounds,
/// so the test does not share the implementation's index math).
fn bucket_of(v: u64) -> usize {
    // Linear scan is fine at test scale; bounds tile the u64 range.
    let mut lo = 0usize;
    let mut hi = 975usize;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if bucket_upper(mid) < v {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

fn snapshot_of(values: &[u64]) -> HistSnapshot {
    let h = LogLinHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// For every quantile the histogram reports, the estimate lies within
    /// the log-linear bucket containing the true sample quantile (and
    /// never above the observed max).
    #[test]
    fn quantiles_stay_within_bucket_bounds(
        values in prop::collection::vec(0u64..2_000_000_000, 1..300)
    ) {
        let snap = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &q in &[0.5, 0.9, 0.99, 0.999] {
            let truth = exact_quantile(&sorted, q);
            let est = snap.quantile(q);
            let b = bucket_of(truth);
            prop_assert!(
                est >= bucket_lower(b) && est <= bucket_upper(b).min(snap.max),
                "q={q}: estimate {est} outside bucket [{}, {}] of true quantile {truth}",
                bucket_lower(b),
                bucket_upper(b)
            );
            // The documented relative-error bound (≤ 1/16 of the value's
            // scale) holds for the p50/p99/p999 the tools print.
            let err = est.abs_diff(truth) as f64;
            prop_assert!(
                err <= (truth as f64) / 16.0 + 1.0,
                "q={q}: |{est} - {truth}| = {err} exceeds the 6.25% bucket bound"
            );
        }
    }

    /// Merging two snapshots is exactly the snapshot of the concatenated
    /// stream: same buckets, same count/sum/min/max, same quantiles.
    #[test]
    fn merge_equals_merged_stream(
        a in prop::collection::vec(0u64..1_000_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000_000, 0..200)
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let direct = snapshot_of(&all);
        prop_assert_eq!(&merged, &direct);
        for &q in &[0.5, 0.9, 0.99, 0.999] {
            prop_assert_eq!(merged.quantile(q), direct.quantile(q));
        }
    }

    /// Recorded extremes are exact regardless of bucketing.
    #[test]
    fn count_min_max_sum_are_exact(
        values in prop::collection::vec(0u64..u64::MAX / 1024, 1..200)
    ) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.min, *values.iter().min().expect("non-empty"));
        prop_assert_eq!(snap.max, *values.iter().max().expect("non-empty"));
    }
}
