//! Telemetry determinism: two same-seed runs of the standard `empstat`
//! workload must produce byte-identical registry contents — every
//! counter, gauge, histogram bucket, and sampled time-series point. Only
//! the `host.` namespace (wall-clock derived) is exempt, and
//! `deterministic_text` excludes it by construction.

use emp_bench::stat;

#[test]
fn same_seed_runs_produce_identical_registries() {
    let a = stat::run_standard_workload();
    let b = stat::run_standard_workload();
    let ta = a.snapshot.deterministic_text();
    let tb = b.snapshot.deterministic_text();
    assert!(!ta.is_empty(), "registry captured nothing");
    assert_eq!(
        ta, tb,
        "two identical runs diverged in telemetry (non-host namespaces)"
    );
    // The sim-time results are bit-equal too, not merely close.
    assert_eq!(a.pingpong_us.to_bits(), b.pingpong_us.to_bits());
    assert_eq!(a.web.requests, b.web.requests);
    assert_eq!(a.web.elapsed_us.to_bits(), b.web.elapsed_us.to_bits());
    assert_eq!(a.web_completion.requests, b.web_completion.requests);
    assert_eq!(
        a.web_completion.elapsed_us.to_bits(),
        b.web_completion.elapsed_us.to_bits()
    );
}

#[test]
fn completion_model_runs_are_deterministic() {
    // The completion model's own determinism guard: two same-seed
    // ring-served webserver runs on fresh sims produce byte-identical
    // telemetry (ring depth series included) and bit-equal results.
    use emp_apps::webserver::{self, ServerModel};
    use emp_apps::Testbed;
    use simnet::{Sim, SimAccess};

    let run = || {
        let sim = Sim::new();
        let tb = Testbed::emp_default(3);
        let r = webserver::concurrent_throughput_on(&sim, &tb, ServerModel::Completion, 8, 6, 512);
        let reg = sim.telemetry();
        reg.sample_now(sim.now().nanos());
        (r, reg.snapshot().deterministic_text())
    };
    let (ra, ta) = run();
    let (rb, tb) = run();
    assert!(
        ta.contains("series ring."),
        "ring depth series missing from the registry"
    );
    assert_eq!(ta, tb, "completion-model telemetry diverged");
    assert_eq!(ra.requests, rb.requests);
    assert_eq!(ra.elapsed_us.to_bits(), rb.elapsed_us.to_bits());
}

#[test]
fn deterministic_text_covers_all_sections() {
    let run = stat::run_standard_workload();
    let text = run.snapshot.deterministic_text();
    assert!(text.contains("hist app.rtt_ns "), "missing RTT histogram");
    assert!(
        text.contains("hist emp.msg_latency_ns "),
        "missing per-message latency histogram"
    );
    assert!(text.contains("series "), "missing sampled series");
    assert!(
        !text.contains("host."),
        "wall-clock namespace leaked into the deterministic rendering"
    );
    // The host namespace is still present in the full snapshot.
    assert!(run.snapshot.series.contains_key("host.wall_us_per_sim_s"));
}
