//! Shape regression tests: each figure's quick-profile data must show the
//! qualitative relationships the paper's figures show. These complement
//! the per-crate calibration tests (which pin absolute numbers) by
//! pinning the *comparisons* — who wins, where, and in which direction
//! the curves move.

use emp_bench::{figures, Profile};

#[test]
fn fig11_enhancement_progression() {
    let fig = figures::fig11(Profile::Quick);
    let at4 = |label: &str| fig.value(label, 4.0).expect("4-byte point");
    assert!(at4("DS") > at4("DS_DA"), "delayed acks help");
    assert!(at4("DS_DA_UQ") > at4("DG"), "datagram beats streaming");
    // §7.1: "The Datagram option performs the closest to EMP ... an
    // overhead of as low as 1 us over EMP". Within the measurement's
    // harness-structure noise, DG tracks raw EMP to well under 1 us.
    assert!(
        (at4("DG") - at4("EMP")).abs() < 1.0,
        "datagram stays within ~1 us of raw EMP (paper §7.1): DG {} vs EMP {}",
        at4("DG"),
        at4("EMP")
    );
}

#[test]
fn fig12_delayed_acks_decay_with_credits() {
    let fig = figures::fig12(Profile::Quick);
    let da = |x: f64| fig.value("DS_DA", x).expect("point");
    let ds = |x: f64| fig.value("DS", x).expect("point");
    assert!(da(32.0) < da(1.0), "latency drops with credit size");
    assert!((ds(1.0) - ds(32.0)).abs() < 1.0, "DS stays flat");
    assert!(
        (da(1.0) - ds(1.0)).abs() < 1.0,
        "at credit 1 delayed acks degenerate to per-message acks"
    );
}

#[test]
fn fig13_substrate_beats_tcp_on_both_axes() {
    let lat = figures::fig13_latency(Profile::Quick);
    let tcp = lat.value("TCP-16K", 4.0).expect("point");
    let dg = lat.value("Datagram", 4.0).expect("point");
    let ds = lat.value("DataStream", 4.0).expect("point");
    assert!(
        (3.0..6.0).contains(&(tcp / dg)),
        "datagram latency improvement ~4.2x (paper): {:.2}",
        tcp / dg
    );
    assert!(
        (2.5..4.5).contains(&(tcp / ds)),
        "streaming latency improvement ~3.4x (paper): {:.2}",
        tcp / ds
    );

    let bw = figures::fig13_bandwidth(Profile::Quick);
    let emp = bw.value("DataStream", 65536.0).expect("point");
    let tcp16 = bw.value("TCP-16K", 65536.0).expect("point");
    let tcp_big = bw.value("TCP-256K", 65536.0).expect("point");
    assert!(tcp16 < tcp_big, "bigger kernel buffers help TCP");
    assert!(emp > tcp_big * 1.35, "substrate wins by >35% (paper: 53%)");
}

#[test]
fn fig14_ftp_ordering() {
    let fig = figures::fig14(Profile::Quick);
    let x = (4 << 20) as f64;
    let ds = fig.value("DataStream", x).expect("point");
    let dg = fig.value("Datagram", x).expect("point");
    let tcp = fig.value("TCP", x).expect("point");
    assert!(ds > tcp && dg > tcp, "both substrate modes beat TCP");
    assert!(
        (ds - dg).abs() / ds < 0.15,
        "DS and DG overlap under file-system overhead (paper §7.3)"
    );
}

#[test]
fn fig15_fig16_webserver_gap_narrows_with_http11() {
    let f15 = figures::fig15(Profile::Quick);
    let f16 = figures::fig16(Profile::Quick);
    for x in [4.0, 1024.0] {
        let r10 = f15.value("TCP", x).unwrap() / f15.value("Substrate", x).unwrap();
        let r11 = f16.value("TCP", x).unwrap() / f16.value("Substrate", x).unwrap();
        assert!(r10 > 2.0, "HTTP/1.0 speedup at {x}: {r10:.2}");
        assert!(r11 > 1.2, "HTTP/1.1 still wins at {x}: {r11:.2}");
        assert!(r11 < r10, "persistent connections narrow the gap at {x}");
    }
}

#[test]
fn fig17_matmul_gap_shrinks_with_n() {
    let fig = figures::fig17(Profile::Quick);
    let gap = |n: f64| fig.value("TCP", n).unwrap() / fig.value("Substrate", n).unwrap();
    assert!(gap(48.0) > 1.0 && gap(96.0) > 1.0, "substrate always wins");
}

#[test]
fn ablations_match_the_papers_qualitative_claims() {
    let ct = figures::ablation_commthread(Profile::Quick);
    let direct = ct.value("DS_DA_UQ", 0.0).unwrap();
    let polling = ct.value("DS_DA_UQ", 1.0).unwrap();
    let blocking = ct.value("DS_DA_UQ", 2.0).unwrap();
    assert!(
        (35.0..50.0).contains(&(polling - direct)),
        "polling thread adds ~2x20 us per round trip: +{:.1}",
        polling - direct
    );
    assert!(blocking > 2_000.0, "blocking thread is milliseconds");

    let pb = figures::ablation_piggyback(Profile::Quick);
    let off = pb.value("DS_DA_UQ", 0.0).unwrap();
    let on = pb.value("DS_DA_UQ", 1.0).unwrap();
    assert!(on < off, "piggy-backing helps bidirectional traffic");

    let nc = figures::ablation_nic_cpus(Profile::Quick);
    let bi1 = nc.value("bidirectional", 1.0).unwrap();
    let bi2 = nc.value("bidirectional", 2.0).unwrap();
    assert!(
        bi2 > bi1 * 1.15,
        "two firmware CPUs clearly win bidirectionally: {bi2:.0} vs {bi1:.0}"
    );

    let cpu = figures::cpu_utilization(Profile::Quick);
    let tcp_ms = cpu.value("kernel CPU", 0.0).unwrap();
    let emp_ms = cpu.value("kernel CPU", 1.0).unwrap();
    assert!(tcp_ms > 10.0, "kernel TCP burns host CPU: {tcp_ms:.1} ms");
    assert_eq!(emp_ms, 0.0, "the substrate burns none (§2 claim)");
}

#[test]
fn connect_time_and_kv_match_paper_mechanisms() {
    let ct = figures::connect_time(Profile::Quick);
    let tcp_block = ct.value("connect() blocks", 0.0).unwrap();
    let emp_block = ct.value("connect() blocks", 1.0).unwrap();
    assert!(
        (180.0..280.0).contains(&tcp_block),
        "TCP connect ~200-250 us (paper §7.4): {tcp_block:.0}"
    );
    assert!(
        emp_block < 40.0,
        "substrate connect just posts: {emp_block:.0}"
    );

    let kv = figures::datacenter_kv(Profile::Quick);
    let emp = kv.value("Substrate", 64.0).unwrap();
    let tcp = kv.value("TCP", 64.0).unwrap();
    assert!(
        tcp / emp > 2.0,
        "kv service ops ~3x faster on the substrate: {:.2}",
        tcp / emp
    );
}

#[test]
fn figure_json_serializes() {
    let fig = figures::fig12(Profile::Quick);
    let json = fig.to_json();
    assert!(json.contains("\"id\": \"fig12\""));
    assert!(json.contains("\"points\""));
    assert!(json.trim_end().ends_with('}'));
}

#[test]
fn overload_goodput_degrades_gracefully_past_saturation() {
    // The robustness acceptance: goodput at 4x saturation stays within
    // 20% of the peak across the at-or-past-saturation loads on both
    // stacks — admission control sheds the excess instead of letting
    // the server collapse. The 0.5x point is deliberately excluded from
    // the peak: below saturation nothing is refused, so every client is
    // served back-to-back and the serving window measures uncontended
    // burst throughput, not the saturated service rate the claim is
    // about. Refusals/sheds must actually happen at 4x (the storm is
    // past saturation by construction).
    use emp_apps::Testbed;
    for make in [
        (&|| Testbed::emp_default(4)) as &dyn Fn() -> Testbed,
        &|| Testbed::kernel_default(4),
    ] {
        let loads = [0.5, 1.0, 2.0, 4.0];
        let reports: Vec<_> = loads
            .iter()
            .map(|&l| figures::overload_point(&make(), l, 32))
            .collect();
        let label = make().nodes[0].api.label().to_string();
        let goodputs: Vec<f64> = reports.iter().map(|r| r.goodput_mbps()).collect();
        let peak = goodputs[1..].iter().cloned().fold(0.0, f64::max);
        let at4 = goodputs[3];
        assert!(
            goodputs[0] > 0.0,
            "{label}: no goodput below saturation ({goodputs:?})"
        );
        assert!(peak > 0.0, "{label}: no goodput anywhere in the sweep");
        assert!(
            at4 >= 0.8 * peak,
            "{label}: goodput collapsed past saturation: {at4:.1} Mbps at 4x \
             vs {peak:.1} Mbps peak ({goodputs:?})"
        );
        let r4 = &reports[3];
        assert!(
            r4.outcomes.refused + r4.shed > 0,
            "{label}: 4x saturation must trip admission control: {r4:?}"
        );
        assert_eq!(
            r4.leaked_conns + r4.leaked_listeners,
            0,
            "{label}: leaked state after the 4x storm: {r4:?}"
        );
    }
}
