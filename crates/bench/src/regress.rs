//! Bench regression gate: compare a freshly generated `figures --json`
//! file against the committed baseline (`BENCH_5.json`) and fail on
//! regressions.
//!
//! The simulation is deterministic, so on an unchanged tree the fresh
//! numbers reproduce the baseline exactly; the tolerance exists so
//! legitimate perf-neutral refactors (which shift timings by a few
//! percent) pass while real regressions — goodput collapse, latency
//! blow-ups, the coalescing or direct-delivery fast paths quietly turning
//! off — fail the `bench-regression` stage of `ci.sh`.
//!
//! The comparison understands both the original `{"figures": [...]}`
//! baseline schema and the versioned v2 schema (`schema_version`, `meta`,
//! `telemetry`, `perf_summary`); only the figures present in *both* files
//! are compared, series by series at common x values. On the fresh file
//! alone it additionally enforces the fast-path invariants the perf-smoke
//! stage asserts: coalescing collapses the 64-byte substrate message
//! count, and posted-reader direct delivery avoids copies outright.

use std::collections::BTreeMap;

/// Default relative tolerance for y-value comparisons.
pub const DEFAULT_TOLERANCE: f64 = 0.35;
/// Absolute slack used when the baseline value is (near) zero, where a
/// relative bound is meaningless (e.g. the "copied %" series at 0).
pub const ZERO_ABS_TOLERANCE: f64 = 5.0;

// ---------------------------------------------------------------------
// Minimal JSON value + parser (the workspace carries no JSON deps)
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64; the bench schemas stay in range).
    Num(f64),
    /// String (escape sequences decoded).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document. Strict enough for the bench files; rejects
/// trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at offset {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut m = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(m));
            }
            loop {
                skip_ws(b, pos);
                let k = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let v = parse_value(b, pos)?;
                m.push((k, v));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(m));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut v = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(v));
            }
            loop {
                v.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(v));
                    }
                    other => return Err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}", pos = *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        *pos += 4;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            _ => out.push(c as char),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{s}' at offset {start}"))
}

// ---------------------------------------------------------------------
// Figure extraction and comparison
// ---------------------------------------------------------------------

/// `figure id -> series label -> (x, y) points` pulled out of either
/// schema (v1 `{"figures": [...]}` or v2 with metadata sections).
pub type FigureMap = BTreeMap<String, BTreeMap<String, Vec<(f64, f64)>>>;

/// Extract every figure's series from a parsed bench JSON document.
pub fn extract_figures(doc: &Json) -> Result<FigureMap, String> {
    let figs = doc
        .get("figures")
        .and_then(Json::as_arr)
        .ok_or("no 'figures' array")?;
    let mut out = FigureMap::new();
    for fig in figs {
        let id = fig
            .get("id")
            .and_then(Json::as_str)
            .ok_or("figure without id")?
            .to_string();
        let mut series = BTreeMap::new();
        for s in fig.get("series").and_then(Json::as_arr).unwrap_or(&[]) {
            let label = s
                .get("label")
                .and_then(Json::as_str)
                .ok_or("series without label")?
                .to_string();
            let mut pts = Vec::new();
            for p in s.get("points").and_then(Json::as_arr).unwrap_or(&[]) {
                let xy = p.as_arr().ok_or("point is not a pair")?;
                if xy.len() != 2 {
                    return Err("point is not a pair".into());
                }
                pts.push((
                    xy[0].as_f64().ok_or("non-numeric x")?,
                    xy[1].as_f64().ok_or("non-numeric y")?,
                ));
            }
            series.insert(label, pts);
        }
        out.insert(id, series);
    }
    Ok(out)
}

/// One comparison outcome.
#[derive(Clone, Debug)]
pub struct Check {
    /// What was checked (figure/series/x or invariant name).
    pub what: String,
    /// Whether it passed.
    pub pass: bool,
    /// Human detail (values and bound).
    pub detail: String,
}

/// The full regression report.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Every executed check, in order.
    pub checks: Vec<Check>,
}

impl Report {
    fn push(&mut self, what: impl Into<String>, pass: bool, detail: impl Into<String>) {
        self.checks.push(Check {
            what: what.into(),
            pass,
            detail: detail.into(),
        });
    }

    /// Number of failed checks.
    pub fn failures(&self) -> usize {
        self.checks.iter().filter(|c| !c.pass).count()
    }

    /// Render one line per check plus a verdict.
    pub fn text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for c in &self.checks {
            let _ = writeln!(
                out,
                "{} {} — {}",
                if c.pass { "PASS" } else { "FAIL" },
                c.what,
                c.detail
            );
        }
        let _ = writeln!(
            out,
            "bench-regression: {} checks, {} failed",
            self.checks.len(),
            self.failures()
        );
        out
    }
}

/// Compare `fresh` against `baseline` (both raw JSON texts) with the
/// given relative tolerance, and enforce the fresh file's fast-path
/// invariants. Returns the report; the caller decides the exit code from
/// [`Report::failures`].
pub fn compare(baseline: &str, fresh: &str, tolerance: f64) -> Result<Report, String> {
    let base_doc = parse_json(baseline).map_err(|e| format!("baseline: {e}"))?;
    let fresh_doc = parse_json(fresh).map_err(|e| format!("fresh: {e}"))?;
    let base = extract_figures(&base_doc).map_err(|e| format!("baseline: {e}"))?;
    let new = extract_figures(&fresh_doc).map_err(|e| format!("fresh: {e}"))?;

    let mut report = Report::default();
    let mut compared = 0usize;
    for (id, base_series) in &base {
        let Some(new_series) = new.get(id) else {
            continue; // baseline figure not regenerated this run
        };
        for (label, base_pts) in base_series {
            let Some(new_pts) = new_series.get(label) else {
                report.push(
                    format!("{id}/{label}"),
                    false,
                    "series present in baseline but missing from fresh run",
                );
                continue;
            };
            for &(x, yb) in base_pts {
                let Some(&(_, yn)) = new_pts.iter().find(|p| p.0 == x) else {
                    continue; // different sweep resolution; only common x compared
                };
                compared += 1;
                let (pass, detail) = if yb.abs() < 1.0 {
                    let d = (yn - yb).abs();
                    (
                        d <= ZERO_ABS_TOLERANCE,
                        format!("baseline {yb:.3} fresh {yn:.3} (abs diff {d:.3} <= {ZERO_ABS_TOLERANCE})"),
                    )
                } else {
                    let rel = (yn - yb).abs() / yb.abs();
                    (
                        rel <= tolerance,
                        format!(
                            "baseline {yb:.3} fresh {yn:.3} (rel diff {:.1}% <= {:.0}%)",
                            rel * 100.0,
                            tolerance * 100.0
                        ),
                    )
                };
                report.push(format!("{id}/{label}@{x}"), pass, detail);
            }
        }
    }
    if compared == 0 {
        report.push(
            "coverage",
            false,
            "no common figure/series/x points between baseline and fresh run",
        );
    }

    check_invariants(&fresh_doc, &mut report);
    Ok(report)
}

/// Fast-path invariants asserted on the fresh run's `perf_summary`
/// section (v2 schema). A fresh file without the section fails — the gate
/// exists precisely to notice the counters disappearing.
fn check_invariants(fresh: &Json, report: &mut Report) {
    let Some(ps) = fresh.get("perf_summary") else {
        report.push(
            "perf_summary",
            false,
            "fresh run carries no perf_summary section",
        );
        return;
    };
    let get = |key: &str| ps.get(key).and_then(Json::as_f64);
    match (get("msgs_64b_coalesce_off"), get("msgs_64b_coalesce_on")) {
        (Some(off), Some(on)) => report.push(
            "coalescing collapses 64B msgs_sent",
            on > 0.0 && on < off,
            format!("off={off} on={on}"),
        ),
        _ => report.push(
            "coalescing collapses 64B msgs_sent",
            false,
            "msgs_64b_coalesce_{off,on} missing from perf_summary",
        ),
    }
    match get("copies_avoided") {
        Some(v) => report.push(
            "direct delivery avoids copies",
            v > 0.0,
            format!("copies_avoided={v}"),
        ),
        None => report.push(
            "direct delivery avoids copies",
            false,
            "copies_avoided missing from perf_summary",
        ),
    }
    match (get("bytes_direct"), get("bytes_received")) {
        (Some(d), Some(r)) => report.push(
            "posted readers take every byte direct",
            d == r,
            format!("bytes_direct={d} bytes_received={r}"),
        ),
        _ => report.push(
            "posted readers take every byte direct",
            false,
            "bytes_{direct,received} missing from perf_summary",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V1: &str = r#"{"figures": [
      {"id": "f", "title": "t", "x_label": "x", "y_label": "y",
       "series": [{"label": "a", "points": [[4, 100.0], [16, 0.0]]}]}
    ]}"#;

    fn v2(y4: f64, summary: &str) -> String {
        format!(
            r#"{{"schema_version": 2, "meta": {{"seed": 0}},
                "figures": [{{"id": "f", "title": "t", "x_label": "x", "y_label": "y",
                  "series": [{{"label": "a", "points": [[4, {y4}], [16, 2.0]]}}]}}],
                "perf_summary": {summary}}}"#
        )
    }

    const GOOD_SUMMARY: &str = r#"{"msgs_64b_coalesce_off": 1000, "msgs_64b_coalesce_on": 10,
        "copies_avoided": 5, "bytes_direct": 99, "bytes_received": 99}"#;

    #[test]
    fn parser_roundtrips_bench_schema() {
        let doc = parse_json(V1).expect("parse");
        let figs = extract_figures(&doc).expect("extract");
        assert_eq!(figs["f"]["a"], vec![(4.0, 100.0), (16.0, 0.0)]);
        assert!(parse_json("{\"a\": [1, 2.5e3, \"x\\n\"]}").is_ok());
        assert!(parse_json("{oops}").is_err());
        assert!(parse_json("[1] garbage").is_err());
    }

    #[test]
    fn within_tolerance_passes() {
        let rep = compare(V1, &v2(110.0, GOOD_SUMMARY), 0.35).expect("compare");
        assert_eq!(rep.failures(), 0, "{}", rep.text());
    }

    #[test]
    fn out_of_tolerance_fails() {
        let rep = compare(V1, &v2(200.0, GOOD_SUMMARY), 0.35).expect("compare");
        assert!(rep.failures() >= 1, "{}", rep.text());
        assert!(rep.text().contains("FAIL f/a@4"));
    }

    #[test]
    fn near_zero_baseline_uses_absolute_slack() {
        // Baseline y=0 at x=16; fresh 2.0 is within ZERO_ABS_TOLERANCE.
        let rep = compare(V1, &v2(100.0, GOOD_SUMMARY), 0.35).expect("compare");
        assert_eq!(rep.failures(), 0, "{}", rep.text());
    }

    #[test]
    fn broken_fast_path_invariants_fail() {
        let bad = r#"{"msgs_64b_coalesce_off": 10, "msgs_64b_coalesce_on": 10,
            "copies_avoided": 0, "bytes_direct": 1, "bytes_received": 2}"#;
        let rep = compare(V1, &v2(100.0, bad), 0.35).expect("compare");
        assert_eq!(rep.failures(), 3, "{}", rep.text());
    }

    #[test]
    fn missing_summary_section_fails() {
        let fresh = r#"{"figures": []}"#;
        let rep = compare(V1, fresh, 0.35).expect("compare");
        assert!(rep.failures() >= 2, "{}", rep.text()); // no coverage + no summary
    }
}
