//! The `empstat` workload: one deterministic simulation exercising the
//! latency path (ping-pong), the readiness path (event-loop webserver)
//! and the completion path (ring-served webserver) on the same testbed,
//! then a snapshot of everything the always-on telemetry registry
//! collected along the way.
//!
//! Both the `empstat` binary and the `figures --json` telemetry section
//! run this, so the numbers a dashboard scrapes and the numbers the
//! figure pipeline embeds come from the identical workload. The
//! determinism integration test runs it twice and asserts byte-identical
//! registry contents.

use simnet::emp_trace::telemetry::RegistrySnapshot;
use simnet::{Sim, SimAccess};

use emp_apps::webserver::{self, ConcurrencyRun, ServerModel};
use emp_apps::{overload, pingpong, OverloadReport, StormConfig, Testbed};

/// Ping-pong message size (bytes) in the standard workload.
pub const PINGPONG_BYTES: usize = 4;
/// Measured ping-pong round trips in the standard workload.
pub const PINGPONG_ITERS: u32 = 50;
/// Concurrent webserver connections in the standard workload.
pub const WEB_CONNS: u32 = 8;
/// Requests per webserver connection in the standard workload.
pub const WEB_REQS: u32 = 10;
/// Webserver response body size in bytes.
pub const WEB_RESPONSE_BYTES: usize = 512;
/// Connection attempts in the standard workload's overload storm.
pub const STORM_CLIENTS: u32 = 24;

/// Everything one standard-workload run produces.
pub struct StatRun {
    /// The telemetry registry after the workload drained (sampled one
    /// final time at the end so series include the closing state).
    pub snapshot: RegistrySnapshot,
    /// Ping-pong one-way latency, µs.
    pub pingpong_us: f64,
    /// Event-loop webserver aggregate result.
    pub web: ConcurrencyRun,
    /// Completion-ring webserver aggregate result (same workload shape
    /// as `web`, served through the SQ/CQ model).
    pub web_completion: ConcurrencyRun,
    /// Async-executor webserver aggregate result (same workload shape,
    /// served by straight-line `async` handlers on the deterministic
    /// executor), so the `exec.*` telemetry is always live in the
    /// export.
    pub web_async: ConcurrencyRun,
    /// Overload storm result (connect storm against a shedding server),
    /// so the admission-control counters are always live in the export.
    pub storm: OverloadReport,
}

/// Run the standard workload on a fresh simulation: a
/// [`PINGPONG_ITERS`]-round ping-pong between nodes 0 and 1, then the
/// event-loop webserver serving [`WEB_CONNS`] concurrent connections,
/// then the same webserver workload through the completion ring, all on
/// one 3-node substrate testbed so every layer registers into a single
/// telemetry registry.
pub fn run_standard_workload() -> StatRun {
    let sim = Sim::new();
    let tb = Testbed::emp_default(3);
    let pingpong_us = pingpong::one_way_latency_us(&sim, &tb, PINGPONG_BYTES, PINGPONG_ITERS);
    let web = webserver::concurrent_throughput_on(
        &sim,
        &tb,
        ServerModel::EventLoop,
        WEB_CONNS,
        WEB_REQS,
        WEB_RESPONSE_BYTES,
    );
    let web_completion = webserver::concurrent_throughput_on(
        &sim,
        &tb,
        ServerModel::Completion,
        WEB_CONNS,
        WEB_REQS,
        WEB_RESPONSE_BYTES,
    );
    let web_async = webserver::concurrent_throughput_on(
        &sim,
        &tb,
        ServerModel::Async,
        WEB_CONNS,
        WEB_REQS,
        WEB_RESPONSE_BYTES,
    );
    // A connect storm past saturation: the overload counters
    // (`sock.connects_refused`, `app.shed`, ...) register in the same
    // snapshot the dashboards scrape.
    let storm = overload::run_storm_on(
        &sim,
        &tb,
        &StormConfig {
            clients: STORM_CLIENTS,
            ..StormConfig::default()
        },
    );
    let reg = sim.telemetry();
    reg.sample_now(sim.now().nanos());
    StatRun {
        snapshot: reg.snapshot(),
        pingpong_us,
        web,
        web_completion,
        web_async,
        storm,
    }
}

/// One-line workload summary printed above the table/export formats.
pub fn workload_summary(run: &StatRun) -> String {
    format!(
        "empstat workload: {PINGPONG_BYTES}B ping-pong {:.2} us one-way over \
         {PINGPONG_ITERS} iters; event-loop webserver {WEB_CONNS} conns x \
         {WEB_REQS} reqs ({} requests, {:.0} req/s); completion-ring \
         webserver ({} requests, {:.0} req/s); async webserver \
         ({} requests, {:.0} req/s)",
        run.pingpong_us,
        run.web.requests,
        run.web.reqs_per_sec,
        run.web_completion.requests,
        run.web_completion.reqs_per_sec,
        run.web_async.requests,
        run.web_async.reqs_per_sec
    ) + &format!(
        "; overload storm {STORM_CLIENTS} attempts -> served={} degraded={} \
         refused={} shed={} timed_out={} ({:.1} Mbps goodput, p99 {:.0} us)",
        run.storm.outcomes.served,
        run.storm.outcomes.degraded,
        run.storm.outcomes.refused,
        run.storm.shed,
        run.storm.outcomes.timed_out,
        run.storm.goodput_mbps(),
        run.storm.p99_us
    )
}

/// Telemetry self-check: the histograms and series the acceptance
/// criteria name must be non-empty after the standard workload. Returns
/// an error string naming the first missing piece.
pub fn self_check(snap: &RegistrySnapshot) -> Result<String, String> {
    let need_hists = [
        "app.rtt_ns",
        "app.eventloop_turn_ns",
        "app.completion_turn_ns",
        "emp.msg_latency_ns",
        "core.poll_wait_ns",
    ];
    for name in need_hists {
        match snap.histograms.get(name) {
            Some(h) if h.count > 0 => {}
            Some(_) => return Err(format!("histogram {name} recorded nothing")),
            None => return Err(format!("histogram {name} missing")),
        }
    }
    let live_series = snap
        .series
        .iter()
        .filter(|(_, s)| !s.points.is_empty())
        .count();
    if live_series < 3 {
        return Err(format!(
            "only {live_series} non-empty time series (need >= 3)"
        ));
    }
    // The completion ring exports its depth gauges as sampled series.
    let ring_series = snap
        .series
        .iter()
        .filter(|(name, s)| name.starts_with("ring.") && !s.points.is_empty())
        .count();
    if ring_series == 0 {
        return Err("no ring.* depth series recorded".into());
    }
    // Overload counters: the storm stage must have tripped admission
    // control somewhere (stack refusal or application shed) and the
    // bookkeeping counters must exist even when zero.
    for name in ["app.shed", "app.reaped"] {
        if !snap.counters.contains_key(name) {
            return Err(format!("counter {name} missing"));
        }
    }
    let refused = snap
        .counters
        .get("sock.connects_refused")
        .copied()
        .unwrap_or(0)
        + snap
            .counters
            .get("tcp.connects_refused")
            .copied()
            .unwrap_or(0);
    let shed = snap.counters.get("app.shed").copied().unwrap_or(0);
    if refused + shed == 0 {
        return Err("overload storm tripped no admission control (refused+shed == 0)".into());
    }
    // Executor telemetry: the async webserver stage runs on the
    // deterministic executor, so its wake counter and poll-spin
    // histogram must have fired, and every task must have retired
    // (`exec.tasks_live` back to zero) once the workload drained.
    let wakes = snap.counters.get("exec.wakes").copied().unwrap_or(0);
    if wakes == 0 {
        return Err("exec.wakes never fired (async stage did not run?)".into());
    }
    match snap.histograms.get("exec.poll_spins") {
        Some(h) if h.count > 0 => {}
        _ => return Err("histogram exec.poll_spins recorded nothing".into()),
    }
    match snap.gauges.get("exec.tasks_live").copied() {
        Some(0) => {}
        Some(v) => return Err(format!("exec.tasks_live stuck at {v} after drain")),
        None => return Err("gauge exec.tasks_live missing".into()),
    }
    // Registered-buffer leak gate: every completion ring's depth gauges
    // (`ring.<label>.sq` / `.in_flight` / `.cq`) must read zero once the
    // workload drained — an in-flight op past the end means a registered
    // buffer the application can never safely reuse.
    for (name, v) in &snap.gauges {
        if name.starts_with("ring.") && *v != 0 {
            return Err(format!("ring gauge {name} stuck at {v} after drain"));
        }
    }
    let mut parts: Vec<String> = need_hists
        .iter()
        .map(|n| format!("{n}={}", snap.histograms[*n].count))
        .collect();
    parts.push(format!("series={live_series}"));
    parts.push(format!("ring_series={ring_series}"));
    parts.push(format!("exec.wakes={wakes}"));
    parts.push(format!("refused={refused}"));
    parts.push(format!("shed={shed}"));
    Ok(format!("empstat self-check ok: {}", parts.join(" ")))
}

/// Connect-storm smoke for the `overload-smoke` stage of `ci.sh`: a
/// past-saturation storm plus slowloris against both stacks, each on a
/// fresh simulation so the telemetry gates read only storm traffic.
/// Gates, per stack: admission control actually refused connections
/// *and* real clients were still served (refused > 0 && goodput > 0),
/// the refusals are visible as telemetry counters (not just in the
/// report), the idle reaper removed the slowloris connections, and no
/// connections or listeners leaked. Returns the per-stack report lines,
/// or the first gate violation.
pub fn run_overload_smoke() -> Result<String, String> {
    let mut lines = vec!["overload smoke ok".to_string()];
    for kernel in [false, true] {
        let sim = Sim::new();
        let tb = if kernel {
            Testbed::kernel_default(4)
        } else {
            Testbed::emp_default(4)
        };
        let label = tb.nodes[0].api.label().to_string();
        let cfg = StormConfig {
            slowloris: 4,
            ..StormConfig::default()
        };
        let r = overload::run_storm_on(&sim, &tb, &cfg);
        let reg = sim.telemetry();
        reg.sample_now(sim.now().nanos());
        let snap = reg.snapshot();
        let ctr = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        if r.outcomes.served == 0 || r.goodput_bytes == 0 {
            return Err(format!("{label}: storm starved every client: {r:?}"));
        }
        if r.outcomes.refused == 0 {
            return Err(format!(
                "{label}: past-saturation storm refused nothing: {r:?}"
            ));
        }
        if ctr("sock.connects_refused") + ctr("tcp.connects_refused") == 0 {
            return Err(format!(
                "{label}: refusals happened but no telemetry counter recorded them"
            ));
        }
        if r.reaped == 0 || ctr("app.reaped") == 0 {
            return Err(format!(
                "{label}: slowloris connections were not reaped: {r:?}"
            ));
        }
        if r.leaked_conns + r.leaked_listeners != 0 {
            return Err(format!("{label}: leaked state after the storm: {r:?}"));
        }
        lines.push(format!(
            "overload[{label}]: served={} degraded={} refused={} shed={} \
             timed_out={} reaped={} goodput={:.1} Mbps p99={:.0} us leaks=0",
            r.outcomes.served,
            r.outcomes.degraded,
            r.outcomes.refused,
            r.shed,
            r.outcomes.timed_out,
            r.reaped,
            r.goodput_mbps(),
            r.p99_us
        ));
    }
    Ok(lines.join("\n"))
}

/// Measured per-operation cost of the telemetry hot paths on this host,
/// and the overhead estimate for the standard ping-pong.
pub struct OverheadReport {
    /// Host nanoseconds per `LogLinHistogram::record`.
    pub ns_per_record: f64,
    /// Host nanoseconds per `Registry::maybe_sample` fast-path check.
    pub ns_per_check: f64,
    /// Telemetry operations the instrumented ping-pong performs
    /// (histogram records across all layers).
    pub pingpong_ops: u64,
    /// Host wall time of the instrumented ping-pong, nanoseconds.
    pub pingpong_wall_ns: u64,
    /// Estimated telemetry share of the ping-pong wall time, percent.
    pub overhead_pct: f64,
}

impl OverheadReport {
    /// Human-readable report (the EXPERIMENTS.md overhead row quotes it).
    pub fn text(&self) -> String {
        format!(
            "telemetry overhead: record={:.1} ns/op, sampler check={:.1} ns/op; \
             pingpong performed {} telemetry ops in {:.2} ms wall \
             -> estimated {:.3}% of run time (budget 2%)",
            self.ns_per_record,
            self.ns_per_check,
            self.pingpong_ops,
            self.pingpong_wall_ns as f64 / 1e6,
            self.overhead_pct
        )
    }
}

/// Microbenchmark the telemetry hot paths and estimate their share of an
/// instrumented ping-pong run. The estimate is (ops x per-op cost) /
/// measured wall time — an upper bound on what unplugging telemetry could
/// save, since it charges every op at its isolated (cache-cold-free)
/// cost.
pub fn measure_overhead() -> OverheadReport {
    use std::time::Instant;

    // Per-op record cost: hammer one histogram with varied values so the
    // branchy bucket math is exercised, not just one cached bucket.
    let h = simnet::emp_trace::telemetry::LogLinHistogram::new();
    const RECORDS: u64 = 2_000_000;
    let t0 = Instant::now();
    for i in 0..RECORDS {
        h.record(i.wrapping_mul(2654435761) & 0xFFFF_FFFF);
    }
    let ns_per_record = t0.elapsed().as_nanos() as f64 / RECORDS as f64;

    // Sampler fast path: the per-event check when no tick is due.
    let reg = simnet::emp_trace::telemetry::Registry::new();
    reg.set_sample_every_ns(u64::MAX / 4);
    const CHECKS: u64 = 2_000_000;
    let t0 = Instant::now();
    for i in 0..CHECKS {
        reg.maybe_sample(i);
    }
    let ns_per_check = t0.elapsed().as_nanos() as f64 / CHECKS as f64;

    // Instrumented ping-pong: wall time and the telemetry ops it drove.
    let sim = Sim::new();
    let tb = Testbed::emp_default(2);
    let t0 = Instant::now();
    let _ = pingpong::one_way_latency_us(&sim, &tb, PINGPONG_BYTES, 200);
    let pingpong_wall_ns = t0.elapsed().as_nanos() as u64;
    let reg = sim.telemetry();
    reg.sample_now(sim.now().nanos());
    let snap = reg.snapshot();
    let hist_ops: u64 = snap.histograms.values().map(|h| h.count).sum();
    let sample_points: u64 = snap.series.values().map(|s| s.points.len() as u64).sum();
    let pingpong_ops = hist_ops + sample_points;
    // Charge records at the record cost and sampled points at roughly a
    // record's cost too (one closure call + push); every simulated event
    // also pays one fast-path check.
    let est_ns = pingpong_ops as f64 * ns_per_record.max(ns_per_check);
    let overhead_pct = est_ns / pingpong_wall_ns.max(1) as f64 * 100.0;
    OverheadReport {
        ns_per_record,
        ns_per_check,
        pingpong_ops,
        pingpong_wall_ns,
        overhead_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_workload_fills_registry() {
        let run = run_standard_workload();
        let ok = self_check(&run.snapshot).expect("self-check");
        assert!(ok.contains("series="));
        assert!(run.pingpong_us > 0.0);
        assert!(run.web.requests == u64::from(WEB_CONNS) * u64::from(WEB_REQS));
        // The acceptance criteria's quantiles are all present and ordered.
        let rtt = &run.snapshot.histograms["app.rtt_ns"];
        assert!(rtt.quantile(0.5) <= rtt.quantile(0.99));
        assert!(rtt.quantile(0.99) <= rtt.quantile(0.999));
        assert!(rtt.quantile(0.999) <= rtt.max);
    }
}
