//! One generator per figure of the paper's evaluation (§7). Each returns a
//! [`Figure`] with the same series the paper plots; the `figures` binary
//! prints them and the criterion benches time representative points.

use emp_apps::{
    bandwidth, ftp, kvstore, matmul, overload, pingpong, webserver, StormConfig, Testbed,
};
use emp_proto::EmpConfig;
use kernel_tcp::TcpConfig;
use simnet::Sim;
use simnet::SimDuration;
use sockets_emp::{RecvMode, SubstrateConfig};

use crate::raw;
use crate::report::{parallel_sweep, Figure};

/// Sweep resolution: `quick` trims the point count for smoke runs and
/// criterion; `full` reproduces every plotted point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Few points, few iterations (CI / criterion).
    Quick,
    /// The full sweeps.
    Full,
}

impl Profile {
    fn latency_sizes(self) -> &'static [usize] {
        match self {
            Profile::Quick => &[4, 256, 4096],
            Profile::Full => &[4, 16, 64, 256, 1024, 4096],
        }
    }

    fn iters(self) -> u32 {
        match self {
            Profile::Quick => 20,
            Profile::Full => 60,
        }
    }
}

fn emp_tb(cfg: SubstrateConfig, label: &str, n: usize) -> Testbed {
    Testbed::emp(n, EmpConfig::default(), cfg, label)
}

fn tcp_tb(n: usize, sockbuf: Option<usize>, label: &str) -> Testbed {
    Testbed::kernel(n, TcpConfig::default(), sockbuf, label)
}

fn latency_sweep(
    cfg: SubstrateConfig,
    label: &str,
    sizes: &[usize],
    iters: u32,
) -> Vec<(f64, f64)> {
    parallel_sweep(sizes, |&size| {
        let sim = Sim::new();
        let tb = emp_tb(cfg.clone(), label, 2);
        (
            size as f64,
            pingpong::one_way_latency_us(&sim, &tb, size, iters),
        )
    })
}

/// Figure 11: small-message latency of the substrate variants (DS, DS_DA,
/// DS_DA_UQ, DG) against raw EMP.
pub fn fig11(profile: Profile) -> Figure {
    let sizes = profile.latency_sizes();
    let iters = profile.iters();
    let mut fig = Figure::new(
        "fig11",
        "Micro-Benchmarks: Latency (substrate variants vs raw EMP)",
        "msg bytes",
        "one-way us",
    );
    fig.push(
        "DS",
        latency_sweep(SubstrateConfig::ds(), "ds", sizes, iters),
    );
    fig.push(
        "DS_DA",
        latency_sweep(SubstrateConfig::ds_da(), "ds-da", sizes, iters),
    );
    fig.push(
        "DS_DA_UQ",
        latency_sweep(SubstrateConfig::ds_da_uq(), "ds-da-uq", sizes, iters),
    );
    fig.push(
        "DG",
        latency_sweep(SubstrateConfig::dg(), "dg", sizes, iters),
    );
    fig.push(
        "EMP",
        parallel_sweep(sizes, |&size| {
            (size as f64, raw::emp_latency_us(size, iters))
        }),
    );
    fig
}

/// Figure 12: 4-byte latency against credit size, with and without
/// delayed acknowledgments.
pub fn fig12(profile: Profile) -> Figure {
    let credits: &[u32] = match profile {
        Profile::Quick => &[1, 4, 32],
        Profile::Full => &[1, 2, 4, 8, 16, 32],
    };
    let iters = profile.iters();
    let mut fig = Figure::new(
        "fig12",
        "Latency variation for Delayed Acknowledgments with Credit Size",
        "credits",
        "one-way us (4-byte msgs)",
    );
    for (label, delayed) in [("DS", false), ("DS_DA", true)] {
        let pts = parallel_sweep(credits, |&n| {
            let cfg = if delayed {
                SubstrateConfig::ds_da().with_credits(n)
            } else {
                SubstrateConfig::ds().with_credits(n)
            };
            let sim = Sim::new();
            let tb = emp_tb(cfg, label, 2);
            (
                f64::from(n),
                pingpong::one_way_latency_us(&sim, &tb, 4, iters),
            )
        });
        fig.push(label, pts);
    }
    fig
}

/// Figure 13 (left): latency of the substrate vs TCP.
pub fn fig13_latency(profile: Profile) -> Figure {
    let sizes = profile.latency_sizes();
    let iters = profile.iters();
    let mut fig = Figure::new(
        "fig13a",
        "Micro-Benchmarks: Latency (substrate vs TCP)",
        "msg bytes",
        "one-way us",
    );
    fig.push(
        "Datagram",
        latency_sweep(SubstrateConfig::dg(), "dg", sizes, iters),
    );
    fig.push(
        "DataStream",
        latency_sweep(SubstrateConfig::ds_da_uq(), "ds", sizes, iters),
    );
    fig.push(
        "EMP",
        parallel_sweep(sizes, |&size| {
            (size as f64, raw::emp_latency_us(size, iters))
        }),
    );
    for (label, buf) in [("TCP-16K", None), ("TCP-256K", Some(256 * 1024))] {
        let pts = parallel_sweep(sizes, |&size| {
            let sim = Sim::new();
            let tb = tcp_tb(2, buf, label);
            (
                size as f64,
                pingpong::one_way_latency_us(&sim, &tb, size, iters),
            )
        });
        fig.push(label, pts);
    }
    fig
}

/// Figure 13 (right): bandwidth of the substrate vs TCP (default and
/// enlarged kernel buffers).
pub fn fig13_bandwidth(profile: Profile) -> Figure {
    let sizes: &[usize] = match profile {
        Profile::Quick => &[4096, 65536],
        Profile::Full => &[1024, 4096, 16384, 65536, 262_144],
    };
    let total = match profile {
        Profile::Quick => 2 << 20,
        Profile::Full => 8 << 20,
    };
    let mut fig = Figure::new(
        "fig13b",
        "Micro-Benchmarks: Bandwidth (substrate vs TCP)",
        "msg bytes",
        "Mbps",
    );
    fig.push(
        "DataStream",
        parallel_sweep(sizes, |&size| {
            let sim = Sim::new();
            let tb = emp_tb(SubstrateConfig::ds_da_uq(), "ds", 2);
            (
                size as f64,
                bandwidth::throughput_mbps(&sim, &tb, size, total),
            )
        }),
    );
    fig.push(
        "Datagram",
        parallel_sweep(sizes, |&size| {
            let sim = Sim::new();
            let tb = emp_tb(SubstrateConfig::dg(), "dg", 2);
            (
                size as f64,
                bandwidth::throughput_mbps(&sim, &tb, size, total),
            )
        }),
    );
    fig.push(
        "EMP",
        parallel_sweep(sizes, |&size| {
            (size as f64, raw::emp_bandwidth_mbps(size, total))
        }),
    );
    for (label, buf) in [("TCP-16K", None), ("TCP-256K", Some(256 * 1024))] {
        let pts = parallel_sweep(sizes, |&size| {
            let sim = Sim::new();
            let tb = tcp_tb(2, buf, label);
            (
                size as f64,
                bandwidth::throughput_mbps(&sim, &tb, size, total),
            )
        });
        fig.push(label, pts);
    }
    fig
}

/// Figure 14: ftp bandwidth over RAM disks.
pub fn fig14(profile: Profile) -> Figure {
    let sizes: &[usize] = match profile {
        Profile::Quick => &[1 << 20, 4 << 20],
        Profile::Full => &[256 << 10, 1 << 20, 4 << 20, 16 << 20],
    };
    let mut fig = Figure::new(
        "fig14",
        "FTP Performance (RAM disk to RAM disk)",
        "file bytes",
        "Mbps",
    );
    fig.push(
        "DataStream",
        parallel_sweep(sizes, |&size| {
            let tb = emp_tb(SubstrateConfig::ds_da_uq(), "ds", 2);
            (size as f64, ftp::transfer_mbps(&tb, size))
        }),
    );
    fig.push(
        "Datagram",
        parallel_sweep(sizes, |&size| {
            let tb = emp_tb(SubstrateConfig::dg(), "dg", 2);
            (size as f64, ftp::transfer_mbps(&tb, size))
        }),
    );
    fig.push(
        "TCP",
        parallel_sweep(sizes, |&size| {
            let tb = tcp_tb(2, None, "tcp");
            (size as f64, ftp::transfer_mbps(&tb, size))
        }),
    );
    fig
}

fn webserver_fig(
    id: &str,
    title: &str,
    version: webserver::HttpVersion,
    profile: Profile,
) -> Figure {
    let sizes: &[usize] = match profile {
        Profile::Quick => &[4, 1024, 8192],
        Profile::Full => &[4, 64, 256, 1024, 4096, 8192],
    };
    let reqs: u32 = match profile {
        Profile::Quick => 8,
        Profile::Full => 24,
    };
    let mut fig = Figure::new(id, title, "response bytes", "avg response us");
    fig.push(
        "Substrate",
        parallel_sweep(sizes, |&size| {
            // §7.4: credit size 4 for the web server.
            let tb = emp_tb(SubstrateConfig::ds_da_uq().with_credits(4), "emp-c4", 4);
            (size as f64, webserver::run_once(&tb, version, size, reqs))
        }),
    );
    fig.push(
        "TCP",
        parallel_sweep(sizes, |&size| {
            let tb = tcp_tb(4, None, "tcp");
            (size as f64, webserver::run_once(&tb, version, size, reqs))
        }),
    );
    fig
}

/// Figure 15: web server average response time, HTTP/1.0.
pub fn fig15(profile: Profile) -> Figure {
    webserver_fig(
        "fig15",
        "Web Server Average Response Time (HTTP/1.0)",
        webserver::HttpVersion::Http10,
        profile,
    )
}

/// Figure 16: web server average response time, HTTP/1.1.
pub fn fig16(profile: Profile) -> Figure {
    webserver_fig(
        "fig16",
        "Web Server Average Response Time (HTTP/1.1)",
        webserver::HttpVersion::Http11,
        profile,
    )
}

/// Figure 17: distributed matrix multiplication on 4 nodes.
pub fn fig17(profile: Profile) -> Figure {
    let ns: &[usize] = match profile {
        Profile::Quick => &[48, 96],
        Profile::Full => &[48, 96, 192, 384],
    };
    let mut fig = Figure::new(
        "fig17",
        "Matrix Multiplication Performance (4 nodes)",
        "matrix n",
        "elapsed ms",
    );
    fig.push(
        "Substrate",
        parallel_sweep(ns, |&n| {
            let sim = Sim::new();
            let tb = emp_tb(SubstrateConfig::ds_da_uq(), "emp", 4);
            let (us, _) = matmul::run(&sim, &tb, n);
            (n as f64, us / 1000.0)
        }),
    );
    fig.push(
        "TCP",
        parallel_sweep(ns, |&n| {
            let sim = Sim::new();
            let tb = tcp_tb(4, None, "tcp");
            let (us, _) = matmul::run(&sim, &tb, n);
            (n as f64, us / 1000.0)
        }),
    );
    fig
}

/// The §5.2 ablation: the rejected separate-communication-thread designs
/// against the adopted direct one, on the 4-byte latency test.
pub fn ablation_commthread(profile: Profile) -> Figure {
    let iters = match profile {
        Profile::Quick => 8,
        Profile::Full => 20,
    };
    let mut fig = Figure::new(
        "ablation-commthread",
        "§5.2 alternatives: receive-path driver vs 4-byte latency",
        "variant (0=direct, 1=polling thread, 2=blocking thread)",
        "one-way us",
    );
    let variants = [
        (0.0, RecvMode::Direct),
        (1.0, RecvMode::CommThreadPolling),
        (2.0, RecvMode::CommThreadBlocking),
    ];
    let pts = parallel_sweep(&variants, |&(x, mode)| {
        let mut cfg = SubstrateConfig::ds_da_uq();
        cfg.recv_mode = mode;
        let sim = Sim::new();
        let tb = emp_tb(cfg, "ablation", 2);
        (x, pingpong::one_way_latency_us(&sim, &tb, 4, iters))
    });
    fig.push("DS_DA_UQ", pts);
    fig
}

/// Ablation: piggy-backed credit returns on vs off (4-byte latency and
/// flow-control-ack message count in a one-way stream).
pub fn ablation_piggyback(profile: Profile) -> Figure {
    let iters = profile.iters();
    let mut fig = Figure::new(
        "ablation-piggyback",
        "§6.1 piggy-back acks: latency with and without",
        "piggyback (0=off, 1=on)",
        "one-way us (4-byte msgs)",
    );
    let variants = [(0.0, false), (1.0, true)];
    let pts = parallel_sweep(&variants, |&(x, on)| {
        let mut cfg = SubstrateConfig::ds_da_uq().with_credits(4);
        cfg.piggyback_acks = on;
        let sim = Sim::new();
        let tb = emp_tb(cfg, "ablation", 2);
        (x, pingpong::one_way_latency_us(&sim, &tb, 4, iters))
    });
    fig.push("DS_DA_UQ", pts);
    fig
}

/// The §8 future-work experiment: a data-center key-value service
/// (persistent connections, small read-mostly operations) over both
/// stacks — per-operation latency against value size.
pub fn datacenter_kv(profile: Profile) -> Figure {
    let sizes: &[usize] = match profile {
        Profile::Quick => &[64, 4096],
        Profile::Full => &[64, 512, 4096, 16384],
    };
    let ops = match profile {
        Profile::Quick => 60,
        Profile::Full => 200,
    };
    let mut fig = Figure::new(
        "datacenter-kv",
        "Key-value service (3 clients, 90% GET) — §8 future work",
        "value bytes",
        "mean op us",
    );
    fig.push(
        "Substrate",
        parallel_sweep(sizes, |&size| {
            let r = kvstore::run_workload(&Testbed::emp_default(4), 3, ops, size, 0.9, 11);
            (size as f64, r.mean_op_us)
        }),
    );
    fig.push(
        "TCP",
        parallel_sweep(sizes, |&size| {
            let r = kvstore::run_workload(&Testbed::kernel_default(4), 3, ops, size, 0.9, 11);
            (size as f64, r.mean_op_us)
        }),
    );
    fig
}

/// Multi-connection scaling: aggregate request throughput against the
/// number of concurrent persistent connections, for the single-process
/// event-loop server (the readiness layer's `poll()` + nonblocking
/// calls), the completion-ring server (submitted ops over registered
/// buffers), the async/await server (straight-line handlers on one
/// deterministic executor), and the process-per-connection server, over
/// both stacks.
pub fn event_loop_concurrency(profile: Profile) -> Figure {
    let conns: &[u32] = match profile {
        Profile::Quick => &[4, 16, 32],
        Profile::Full => &[4, 8, 16, 32, 64],
    };
    let reqs_per_conn: u32 = match profile {
        Profile::Quick => 4,
        Profile::Full => 8,
    };
    let response = 1024usize;
    let mut fig = Figure::new(
        "event-loop-concurrency",
        "Concurrent connections vs throughput: readiness event loop vs \
         completion ring vs async/await vs process-per-connection",
        "connections",
        "reqs/s",
    );
    let models = [
        webserver::ServerModel::EventLoop,
        webserver::ServerModel::Completion,
        webserver::ServerModel::Async,
        webserver::ServerModel::PerConnection,
    ];
    for model in models {
        let pts = parallel_sweep(conns, |&n| {
            let tb = emp_tb(SubstrateConfig::ds_da_uq().with_credits(4), "emp-c4", 5);
            let r = webserver::concurrent_throughput(&tb, model, n, reqs_per_conn, response);
            (f64::from(n), r.reqs_per_sec)
        });
        fig.push(format!("Substrate {}", model.label()), pts);
    }
    for model in models {
        let pts = parallel_sweep(conns, |&n| {
            let tb = tcp_tb(5, None, "tcp");
            let r = webserver::concurrent_throughput(&tb, model, n, reqs_per_conn, response);
            (f64::from(n), r.reqs_per_sec)
        });
        fig.push(format!("TCP {}", model.label()), pts);
    }
    fig
}

/// Fairness and tail latency of the concurrency models: per-request p50
/// and p99 against connection count on the substrate, for the async
/// executor, the event loop, and process-per-connection. The aggregate
/// throughput curves above can hide a server that serves connections
/// unevenly; the p99/p50 gap here is where a scheduling model that lets
/// one handler hog its turn would show up (the Jain fairness index per
/// run is asserted in the apps tests).
pub fn concurrency_fairness(profile: Profile) -> Figure {
    let conns: &[u32] = match profile {
        Profile::Quick => &[8, 32],
        Profile::Full => &[8, 16, 32, 64],
    };
    let reqs_per_conn: u32 = match profile {
        Profile::Quick => 4,
        Profile::Full => 8,
    };
    let response = 1024usize;
    let mut fig = Figure::new(
        "concurrency-fairness",
        "Request latency under concurrency: async vs event loop vs \
         process-per-connection (substrate, per-request percentiles)",
        "connections",
        "request us",
    );
    let models = [
        webserver::ServerModel::Async,
        webserver::ServerModel::EventLoop,
        webserver::ServerModel::PerConnection,
    ];
    for model in models {
        let pts = parallel_sweep(conns, |&n| {
            let tb = emp_tb(SubstrateConfig::ds_da_uq().with_credits(4), "emp-c4", 5);
            let r = webserver::concurrent_latency(&tb, model, n, reqs_per_conn, response);
            (f64::from(n), r.p50_us)
        });
        fig.push(format!("{} p50", model.label()), pts);
    }
    for model in models {
        let pts = parallel_sweep(conns, |&n| {
            let tb = emp_tb(SubstrateConfig::ds_da_uq().with_credits(4), "emp-c4", 5);
            let r = webserver::concurrent_latency(&tb, model, n, reqs_per_conn, response);
            (f64::from(n), r.p99_us)
        });
        fig.push(format!("{} p99", model.label()), pts);
    }
    fig
}

/// Connection-setup comparison (§7.4's quoted numbers): how long
/// `connect()` blocks the caller, and how long until `accept()` holds
/// the connection.
pub fn connect_time(profile: Profile) -> Figure {
    let iters = match profile {
        Profile::Quick => 8,
        Profile::Full => 24,
    };
    let mut fig = Figure::new(
        "connect-time",
        "Connection setup: substrate vs kernel TCP (§7.4)",
        "stack (0=TCP, 1=substrate c4)",
        "us",
    );
    let sim = Sim::new();
    let tb = tcp_tb(2, None, "tcp");
    let (tcp_blocked, tcp_est) = pingpong::connect_times_us(&sim, &tb, iters);
    let sim = Sim::new();
    let tb = emp_tb(SubstrateConfig::ds_da_uq().with_credits(4), "emp-c4", 2);
    let (emp_blocked, emp_est) = pingpong::connect_times_us(&sim, &tb, iters);
    fig.push(
        "connect() blocks",
        vec![(0.0, tcp_blocked), (1.0, emp_blocked)],
    );
    fig.push("established", vec![(0.0, tcp_est), (1.0, emp_est)]);
    fig
}

/// The IPDPS'02 companion ablation: EMP on a single-firmware-CPU NIC vs
/// the Tigon2's two. One CPU serializes the transmit and receive paths,
/// which mostly costs bandwidth (both directions' per-frame work lands
/// on the same resource).
pub fn ablation_nic_cpus(profile: Profile) -> Figure {
    let total = match profile {
        Profile::Quick => 2 << 20,
        Profile::Full => 8 << 20,
    };
    let mut fig = Figure::new(
        "ablation-nic-cpus",
        "Single vs dual firmware CPU (IPDPS'02 companion question)",
        "firmware CPUs",
        "stream bandwidth Mbps",
    );
    let variants = [(1.0f64, true), (2.0, false)];
    for (label, bidirectional) in [("one-way", false), ("bidirectional", true)] {
        let pts = parallel_sweep(&variants, |&(x, single)| {
            let mut emp_cfg = EmpConfig::default();
            emp_cfg.nic.single_cpu = single;
            let sim = Sim::new();
            let tb = Testbed::emp(2, emp_cfg, SubstrateConfig::ds_da_uq(), "nic-cpus");
            let mbps = if bidirectional {
                bandwidth::bidirectional_mbps(&sim, &tb, 64 * 1024, total)
            } else {
                bandwidth::throughput_mbps(&sim, &tb, 64 * 1024, total)
            };
            (x, mbps)
        });
        fig.push(label, pts);
    }
    fig
}

/// Host-CPU-consumption experiment (the §2 claim: "This gives maximum
/// benefit to the host in terms of not just bandwidth and latency but
/// also CPU utilization"): kernel/stack CPU milliseconds consumed across
/// both hosts while moving a fixed volume, per stack. The substrate's
/// entry is zero by construction — the whole protocol lives on the NIC
/// and in user space, so no kernel resource is ever charged.
pub fn cpu_utilization(profile: Profile) -> Figure {
    let total = match profile {
        Profile::Quick => 2 << 20,
        Profile::Full => 8 << 20,
    };
    let mut fig = Figure::new(
        "cpu-utilization",
        "Host kernel/stack CPU time per bulk transfer (§2 claim)",
        "stack (0=TCP, 1=substrate)",
        "kernel CPU ms",
    );
    // Kernel TCP, built directly so the kernel resource is introspectable.
    let tcp_cluster =
        kernel_tcp::build_tcp_cluster(2, TcpConfig::default(), simnet::SwitchConfig::default());
    for node in &tcp_cluster.nodes {
        node.stack.set_sockbuf(256 * 1024);
    }
    let sim = Sim::new();
    run_tcp_bulk(&sim, &tcp_cluster, total);
    let tcp_busy_ms: f64 = tcp_cluster
        .nodes
        .iter()
        .map(|n| n.stack.kernel_cpu_busy().as_millis_f64())
        .sum();
    // Substrate: run the same volume to confirm completion, then report
    // its (structurally zero) kernel time.
    let sim = Sim::new();
    let tb = emp_tb(SubstrateConfig::ds_da_uq(), "emp", 2);
    bandwidth::throughput_mbps(&sim, &tb, 64 * 1024, total);
    let emp_busy_ms = 0.0;
    fig.push("kernel CPU", vec![(0.0, tcp_busy_ms), (1.0, emp_busy_ms)]);
    fig
}

/// Drive one bulk transfer over a raw kernel cluster (introspectable,
/// unlike the adapter-wrapped testbed).
fn run_tcp_bulk(sim: &Sim, cluster: &kernel_tcp::TcpCluster, total: usize) {
    use kernel_tcp::SockAddr;
    let api_s = cluster.nodes[1].api();
    let api_c = cluster.nodes[0].api();
    let addr = SockAddr::new(cluster.nodes[1].addr(), 9);
    sim.spawn("cpu-sink", move |ctx| {
        let l = api_s.listen(ctx, 9, 4)?.expect("port");
        let c = l.accept(ctx)?;
        let mut got = 0;
        while got < total {
            let d = c.read(ctx, 64 * 1024)?.expect("data");
            if d.is_empty() {
                break;
            }
            got += d.len();
        }
        Ok(())
    });
    sim.spawn("cpu-source", move |ctx| {
        let c = api_c.connect(ctx, addr)?.expect("connect");
        let buf = vec![0u8; 64 * 1024];
        let mut sent = 0;
        while sent < total {
            c.write(ctx, &buf)?.expect("write");
            sent += buf.len();
        }
        c.close(ctx)?;
        Ok(())
    });
    sim.run();
}

/// One point of the small-write coalescing sweep: goodput with and
/// without coalescing (plus kernel TCP for scale) and the substrate
/// message counts that explain the gap. `ci.sh` asserts on the counters;
/// the figure plots the Mbps columns.
pub struct SmallMsgPoint {
    /// Application write size in bytes.
    pub size: usize,
    /// Goodput, DS_DA_UQ with coalescing off.
    pub mbps_off: f64,
    /// Goodput, DS_DA_UQ with coalescing on.
    pub mbps_on: f64,
    /// Goodput, kernel TCP (256K socket buffers).
    pub mbps_tcp: f64,
    /// Substrate data messages sent, coalescing off.
    pub msgs_off: u64,
    /// Substrate data messages sent, coalescing on.
    pub msgs_on: u64,
}

/// Run the small-message bandwidth sweep behind
/// [`small_message_throughput`], returning the per-point counters too.
pub fn small_message_sweep(profile: Profile) -> Vec<SmallMsgPoint> {
    let sizes: &[usize] = match profile {
        Profile::Quick => &[64, 256],
        Profile::Full => &[16, 64, 256, 1024],
    };
    let total: usize = match profile {
        Profile::Quick => 64 * 1024,
        Profile::Full => 256 * 1024,
    };
    parallel_sweep(sizes, |&size| {
        let run = |cfg: SubstrateConfig, label: &str| {
            let sim = Sim::new();
            let tb = emp_tb(cfg, label, 2);
            bandwidth::throughput_with_stats(&sim, &tb, size, total)
        };
        let (mbps_off, st_off) = run(SubstrateConfig::ds_da_uq(), "ds-da-uq");
        let (mbps_on, st_on) = run(SubstrateConfig::ds_da_uq().with_coalescing(), "ds-coalesce");
        let sim = Sim::new();
        let tb = tcp_tb(2, Some(256 * 1024), "tcp-256k");
        let mbps_tcp = bandwidth::throughput_mbps(&sim, &tb, size, total);
        SmallMsgPoint {
            size,
            mbps_off,
            mbps_on,
            mbps_tcp,
            msgs_off: st_off.msgs_sent,
            msgs_on: st_on.msgs_sent,
        }
    })
}

/// Shape a finished sweep into the plotted figure.
pub fn small_message_figure(points: &[SmallMsgPoint]) -> Figure {
    let mut fig = Figure::new(
        "small-message-throughput",
        "Small-message bandwidth: write coalescing vs plain substrate vs TCP",
        "msg bytes",
        "Mbps",
    );
    fig.push(
        "DS_DA_UQ",
        points.iter().map(|p| (p.size as f64, p.mbps_off)).collect(),
    );
    fig.push(
        "DS_DA_UQ+coal",
        points.iter().map(|p| (p.size as f64, p.mbps_on)).collect(),
    );
    fig.push(
        "TCP 256K",
        points.iter().map(|p| (p.size as f64, p.mbps_tcp)).collect(),
    );
    fig
}

/// Small-message bandwidth with and without write coalescing.
pub fn small_message_throughput(profile: Profile) -> Figure {
    small_message_figure(&small_message_sweep(profile))
}

/// One point of the direct-delivery sweep: ping-pong latency with and
/// without receiver-posted direct delivery, plus the delivery counters.
/// The ping-pong reader is always parked in `read()` when its message
/// lands, so with the knob on every in-sequence delivery should bypass
/// the §6.2 temp-buffer copy.
pub struct CopyAvoidPoint {
    /// Message size in bytes.
    pub size: usize,
    /// One-way latency, direct delivery off (µs).
    pub us_off: f64,
    /// One-way latency, direct delivery on (µs).
    pub us_on: f64,
    /// Temp-buffer copies skipped (both ends summed), knob on.
    pub copies_avoided: u64,
    /// Bytes delivered straight into posted reader buffers, knob on.
    pub bytes_direct: u64,
    /// Total bytes received (both ends summed), knob on.
    pub bytes_received: u64,
}

/// Run the direct-delivery ping-pong sweep behind [`copy_avoidance`].
pub fn copy_avoidance_sweep(profile: Profile) -> Vec<CopyAvoidPoint> {
    let sizes = profile.latency_sizes();
    let iters = profile.iters();
    parallel_sweep(sizes, |&size| {
        let run = |cfg: SubstrateConfig, label: &str| {
            let sim = Sim::new();
            let tb = emp_tb(cfg, label, 2);
            pingpong::pingpong_with_stats(&sim, &tb, size, iters)
        };
        let (us_off, _) = run(SubstrateConfig::ds_da_uq(), "ds-da-uq");
        let (us_on, st_on) = run(
            SubstrateConfig::ds_da_uq().with_direct_delivery(),
            "ds-direct",
        );
        CopyAvoidPoint {
            size,
            us_off,
            us_on,
            copies_avoided: st_on.copies_avoided,
            bytes_direct: st_on.bytes_direct,
            bytes_received: st_on.bytes_received,
        }
    })
}

/// Shape a finished sweep into the plotted figure.
pub fn copy_avoidance_figure(points: &[CopyAvoidPoint]) -> Figure {
    let mut fig = Figure::new(
        "copy-avoidance",
        "Posted-reader direct delivery: latency and share of bytes copied",
        "msg bytes",
        "one-way us (copy % on right series)",
    );
    fig.push(
        "DS_DA_UQ",
        points.iter().map(|p| (p.size as f64, p.us_off)).collect(),
    );
    fig.push(
        "DS_DA_UQ+direct",
        points.iter().map(|p| (p.size as f64, p.us_on)).collect(),
    );
    fig.push(
        "copied %",
        points
            .iter()
            .map(|p| {
                let copied = p.bytes_received.saturating_sub(p.bytes_direct) as f64;
                let pct = if p.bytes_received == 0 {
                    0.0
                } else {
                    copied / p.bytes_received as f64 * 100.0
                };
                (p.size as f64, pct)
            })
            .collect(),
    );
    fig
}

/// Ping-pong latency and copy share with receiver-posted direct delivery.
pub fn copy_avoidance(profile: Profile) -> Figure {
    copy_avoidance_figure(&copy_avoidance_sweep(profile))
}

/// Inter-arrival gap (µs) at the storm server's saturation point: the
/// offered-load axis of [`overload_degradation`] is expressed as
/// multiples of this arrival rate (load 2.0 = half the gap).
pub const SATURATION_STAGGER_US: u64 = 80;

/// One overload point: a connect storm at `load` times the saturation
/// arrival rate against a shedding server on `tb`.
pub fn overload_point(tb: &Testbed, load: f64, clients: u32) -> emp_apps::OverloadReport {
    let gap_us = (SATURATION_STAGGER_US as f64 / load).max(1.0) as u64;
    overload::run_storm(
        tb,
        &StormConfig {
            clients,
            stagger: SimDuration::from_micros(gap_us),
            ..StormConfig::default()
        },
    )
}

/// Overload robustness: offered load (multiples of the saturation
/// arrival rate) against goodput and p99 served latency, both stacks.
/// The claim under test (DESIGN.md §15): past saturation, admission
/// control and shedding hold goodput near its saturated peak — offered
/// load rises 8x across the sweep, goodput must not collapse.
pub fn overload_degradation(profile: Profile) -> Figure {
    let loads: &[f64] = match profile {
        Profile::Quick => &[0.5, 1.0, 4.0],
        Profile::Full => &[0.5, 1.0, 2.0, 4.0],
    };
    let clients: u32 = match profile {
        Profile::Quick => 32,
        Profile::Full => 48,
    };
    let mut fig = Figure::new(
        "overload-degradation",
        "Offered load vs goodput and tail latency under admission control",
        "offered load (% of saturation)",
        "goodput Mbps / p99 us",
    );
    let emp_pts = parallel_sweep(loads, |&load| {
        let r = overload_point(&Testbed::emp_default(4), load, clients);
        (load, (r.goodput_mbps(), r.p99_us))
    });
    let tcp_pts = parallel_sweep(loads, |&load| {
        let r = overload_point(&Testbed::kernel_default(4), load, clients);
        (load, (r.goodput_mbps(), r.p99_us))
    });
    fig.push(
        "Substrate goodput",
        emp_pts
            .iter()
            .map(|&(x, (g, _))| (x * 100.0, g))
            .collect::<Vec<_>>(),
    );
    fig.push(
        "TCP goodput",
        tcp_pts
            .iter()
            .map(|&(x, (g, _))| (x * 100.0, g))
            .collect::<Vec<_>>(),
    );
    fig.push(
        "Substrate p99",
        emp_pts
            .iter()
            .map(|&(x, (_, p))| (x * 100.0, p))
            .collect::<Vec<_>>(),
    );
    fig.push(
        "TCP p99",
        tcp_pts
            .iter()
            .map(|&(x, (_, p))| (x * 100.0, p))
            .collect::<Vec<_>>(),
    );
    fig
}

/// Every figure, in paper order.
pub fn all_figures(profile: Profile) -> Vec<Figure> {
    vec![
        fig11(profile),
        fig12(profile),
        fig13_latency(profile),
        fig13_bandwidth(profile),
        fig14(profile),
        fig15(profile),
        fig16(profile),
        fig17(profile),
        connect_time(profile),
        datacenter_kv(profile),
        event_loop_concurrency(profile),
        concurrency_fairness(profile),
        ablation_commthread(profile),
        ablation_piggyback(profile),
        ablation_nic_cpus(profile),
        cpu_utilization(profile),
        small_message_throughput(profile),
        copy_avoidance(profile),
        overload_degradation(profile),
    ]
}
