//! # emp-bench — figure harnesses and benchmarks
//!
//! Regenerates every figure of the paper's evaluation (§7) from the
//! simulated testbed: [`figures::fig11`] through [`figures::fig17`], plus
//! the §5.2/§6 ablations. The `figures` binary prints the tables and
//! writes JSON; the criterion benches time representative points of each
//! figure's harness.

#![warn(missing_docs)]

pub mod figures;
pub mod raw;
pub mod regress;
pub mod report;
pub mod stat;

pub use figures::{all_figures, Profile};
pub use report::{Figure, Series};
