//! Raw-EMP microbenchmarks: the "EMP" series of Figures 11 and 13,
//! measured directly on the message-passing API with no sockets layer.

use std::sync::Arc;

use bytes::Bytes;
use emp_proto::{build_cluster, EmpConfig, Tag};
use hostsim::VirtRange;
use parking_lot::Mutex;
use simnet::{Sim, SimAccess, SimDuration, SwitchConfig};

fn buf(slot: u64, len: usize) -> VirtRange {
    VirtRange::new(0x9_0000_0000 + slot * 0x100_0000, len.max(1) as u64)
}

/// One-way latency of raw EMP for `msg_size`-byte messages (µs).
pub fn emp_latency_us(msg_size: usize, iters: u32) -> f64 {
    let sim = Sim::new();
    let cl = build_cluster(2, EmpConfig::default(), SwitchConfig::default());
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let (addr_a, addr_b) = (a.addr(), b.addr());
    let out = Arc::new(Mutex::new(f64::NAN));
    let out2 = Arc::clone(&out);

    // The classic EMP latency test is lean: sends are fire-and-forget in
    // the loop (handles are drained afterwards), exactly what the
    // datagram substrate also does — so the comparison is like-for-like.
    let b2 = b.clone();
    sim.spawn("raw-echoer", move |ctx| {
        let mut sends = Vec::with_capacity((iters + 4) as usize);
        for _ in 0..iters + 4 {
            let h = b2.post_recv(ctx, Tag(1), None, msg_size, buf(1, msg_size))?;
            let msg = b2.wait_recv(ctx, &h)?.expect("ping");
            sends.push(b2.post_send(ctx, addr_a, Tag(2), msg.data, buf(2, msg_size))?);
        }
        for h in &sends {
            assert!(b2.wait_send(ctx, h)?);
        }
        Ok(())
    });
    sim.spawn("raw-pinger", move |ctx| {
        ctx.delay(SimDuration::from_micros(50))?;
        let payload = Bytes::from(vec![0x11u8; msg_size]);
        let mut sends = Vec::with_capacity((iters + 4) as usize);
        for _ in 0..4 {
            let hr = a.post_recv(ctx, Tag(2), None, msg_size, buf(3, msg_size))?;
            sends.push(a.post_send(ctx, addr_b, Tag(1), payload.clone(), buf(4, msg_size))?);
            a.wait_recv(ctx, &hr)?.expect("pong");
        }
        let t0 = ctx.now();
        for _ in 0..iters {
            let hr = a.post_recv(ctx, Tag(2), None, msg_size, buf(3, msg_size))?;
            sends.push(a.post_send(ctx, addr_b, Tag(1), payload.clone(), buf(4, msg_size))?);
            a.wait_recv(ctx, &hr)?.expect("pong");
        }
        *out2.lock() = ((ctx.now() - t0) / u64::from(iters)).as_micros_f64() / 2.0;
        for h in &sends {
            assert!(a.wait_send(ctx, h)?);
        }
        Ok(())
    });
    sim.run();
    let us = *out.lock();
    assert!(us.is_finite(), "raw EMP ping-pong did not complete");
    us
}

/// Raw EMP goodput for `msg_size`-byte messages over `total_bytes` (Mbps).
pub fn emp_bandwidth_mbps(msg_size: usize, total_bytes: usize) -> f64 {
    let count = total_bytes / msg_size;
    let sim = Sim::new();
    let cl = build_cluster(2, EmpConfig::default(), SwitchConfig::default());
    let (a, b) = (cl.nodes[0].endpoint(), cl.nodes[1].endpoint());
    let dst = b.addr();
    let out = Arc::new(Mutex::new(f64::NAN));
    let out2 = Arc::clone(&out);

    let b2 = b.clone();
    sim.spawn("raw-sink", move |ctx| {
        let mut handles = Vec::with_capacity(count);
        for i in 0..count {
            handles.push(b2.post_recv(
                ctx,
                Tag(1),
                None,
                msg_size,
                buf(10 + (i % 64) as u64, msg_size),
            )?);
        }
        let t0 = ctx.now();
        for h in &handles {
            b2.wait_recv(ctx, h)?.expect("data");
        }
        let elapsed = ctx.now() - t0;
        *out2.lock() = (msg_size * count) as f64 * 8.0 / elapsed.as_secs_f64() / 1e6;
        Ok(())
    });
    sim.spawn("raw-source", move |ctx| {
        ctx.delay(SimDuration::from_millis(2))?;
        let payload = Bytes::from(vec![0x22u8; msg_size]);
        // Self-clocking window of 4 outstanding messages.
        let mut pending = std::collections::VecDeque::new();
        for _ in 0..count {
            if pending.len() >= 4 {
                let h: emp_proto::SendHandle = pending.pop_front().expect("nonempty");
                assert!(a.wait_send(ctx, &h)?);
            }
            pending.push_back(a.post_send(ctx, dst, Tag(1), payload.clone(), buf(5, msg_size))?);
        }
        for h in pending {
            assert!(a.wait_send(ctx, &h)?);
        }
        Ok(())
    });
    sim.run();
    let mbps = *out.lock();
    assert!(mbps.is_finite(), "raw EMP bandwidth did not complete");
    mbps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_latency_at_paper_point() {
        let us = emp_latency_us(4, 50);
        assert!((25.0..31.0).contains(&us), "raw EMP {us:.1} us");
    }

    #[test]
    fn raw_bandwidth_at_paper_point() {
        let mbps = emp_bandwidth_mbps(64 * 1024, 4 << 20);
        assert!((780.0..920.0).contains(&mbps), "raw EMP {mbps:.0} Mbps");
    }
}
