//! Regenerate the paper's figures.
//!
//! ```text
//! cargo run --release -p emp-bench --bin figures            # all, full sweeps
//! cargo run --release -p emp-bench --bin figures -- --quick # smoke profile
//! cargo run --release -p emp-bench --bin figures -- fig14   # one figure
//! cargo run --release -p emp-bench --bin figures --features trace -- --trace
//! ```
//!
//! Tables print to stdout; JSON lands in `target/figures/<id>.json`.
//! `--json <path>` additionally writes every generated figure into one
//! combined machine-readable file (schema v2): `meta` records the
//! profile, seed, build features, and a fingerprint of the default sim
//! configs; `telemetry` embeds a full registry snapshot from the
//! `empstat` standard workload (tail-latency quantiles, sampled time
//! series); `perf_summary` carries the fast-path counters the
//! `regress` gate asserts on. The `small-message-throughput` and
//! `copy-avoidance` figures also print one `key=value` summary line per
//! swept size (the perf-smoke stage of `ci.sh` asserts on these).
//! `--trace` (requires the `trace` feature) runs a traced ping-pong
//! instead, printing the §7-style latency budget and writing a
//! Perfetto-loadable Chrome trace to `target/figures/pingpong_trace.json`.

use emp_bench::figures::{self, CopyAvoidPoint, SmallMsgPoint};
use emp_bench::{stat, Figure, Profile};

/// Counters from the fast-path sweeps, kept for the combined JSON's
/// `perf_summary` section when those figures were generated.
#[derive(Default)]
struct PerfPoints {
    small: Option<Vec<SmallMsgPoint>>,
    copy: Option<Vec<CopyAvoidPoint>>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--trace") {
        run_traced_pingpong();
        return;
    }
    let mut profile = Profile::Full;
    let mut json_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => profile = Profile::Quick,
            "--json" => match it.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("--json needs a file path");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
            _ => wanted.push(a),
        }
    }

    let mut perf = PerfPoints::default();
    let figures: Vec<Figure> = {
        if wanted.is_empty() {
            // Same set and order as `figures::all_figures`, spelled out so
            // the fast-path sweeps land in `perf` here too.
            wanted = vec![
                "fig11",
                "fig12",
                "fig13a",
                "fig13b",
                "fig14",
                "fig15",
                "fig16",
                "fig17",
                "connect-time",
                "datacenter-kv",
                "event-loop-concurrency",
                "concurrency-fairness",
                "ablation-commthread",
                "ablation-piggyback",
                "ablation-nic-cpus",
                "cpu-utilization",
                "small-message-throughput",
                "copy-avoidance",
                "overload-degradation",
            ]
            .into_iter()
            .map(String::from)
            .collect();
        }
        let mut out = Vec::new();
        for name in &wanted {
            let fig = match name.as_str() {
                "fig11" => figures::fig11(profile),
                "fig12" => figures::fig12(profile),
                "fig13a" | "fig13" => figures::fig13_latency(profile),
                "fig13b" => figures::fig13_bandwidth(profile),
                "fig14" => figures::fig14(profile),
                "fig15" => figures::fig15(profile),
                "fig16" => figures::fig16(profile),
                "fig17" => figures::fig17(profile),
                "ablation-commthread" => figures::ablation_commthread(profile),
                "ablation-piggyback" => figures::ablation_piggyback(profile),
                "cpu-utilization" => figures::cpu_utilization(profile),
                "ablation-nic-cpus" => figures::ablation_nic_cpus(profile),
                "connect-time" => figures::connect_time(profile),
                "datacenter-kv" => figures::datacenter_kv(profile),
                "event-loop-concurrency" => figures::event_loop_concurrency(profile),
                "concurrency-fairness" => figures::concurrency_fairness(profile),
                "small-message-throughput" => small_message_with_summary(profile, &mut perf),
                "copy-avoidance" => copy_avoidance_with_summary(profile, &mut perf),
                "overload-degradation" => figures::overload_degradation(profile),
                other => {
                    eprintln!("unknown figure '{other}'");
                    std::process::exit(2);
                }
            };
            out.push(fig);
        }
        out
    };

    let json_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(json_dir).expect("create target/figures");
    for fig in &figures {
        println!("{}", fig.to_table());
        let path = json_dir.join(format!("{}.json", fig.id));
        std::fs::write(&path, fig.to_json()).expect("write figure json");
    }
    println!("(json written to target/figures/)");
    if let Some(path) = json_path {
        let combined = combined_json(&figures, profile, &perf);
        std::fs::write(&path, combined).expect("write combined json");
        println!("(combined json written to {path})");
    }
}

/// Assemble the schema-v2 combined JSON: metadata, every generated
/// figure, a telemetry snapshot from the standard workload, and the
/// fast-path counters (when their sweeps ran).
fn combined_json(figures: &[Figure], profile: Profile, perf: &PerfPoints) -> String {
    use std::fmt::Write;
    let telem = stat::run_standard_workload();
    let mut out = String::from("{\n\"schema_version\": 2,\n");
    let _ = writeln!(
        out,
        "\"meta\": {{\"generator\": \"figures\", \"profile\": \"{}\", \"seed\": 0, \
         \"features\": {{\"trace\": {}}}, \"config_fingerprint\": \"{:016x}\"}},",
        match profile {
            Profile::Quick => "quick",
            Profile::Full => "full",
        },
        simnet::emp_trace::ENABLED,
        config_fingerprint(),
    );
    let body: Vec<String> = figures.iter().map(|f| f.to_json()).collect();
    let _ = write!(out, "\"figures\": [\n{}],\n", body.join(","));
    let _ = writeln!(
        out,
        "\"workload\": {{\"pingpong_us\": {}, \"web_requests\": {}, \"web_reqs_per_sec\": {}}},",
        telem.pingpong_us, telem.web.requests, telem.web.reqs_per_sec
    );
    let _ = write!(
        out,
        "\"telemetry\": {}",
        telem.snapshot.to_json().trim_end()
    );
    if let Some(summary) = perf_summary_json(perf) {
        let _ = write!(out, ",\n\"perf_summary\": {summary}");
    }
    out.push_str("\n}\n");
    out
}

/// The counters the `regress` gate asserts on, from the 64-byte point of
/// the coalescing sweep and the whole direct-delivery sweep. `None` when
/// neither sweep ran this invocation.
fn perf_summary_json(perf: &PerfPoints) -> Option<String> {
    let mut fields = Vec::new();
    if let Some(pts) = &perf.small {
        if let Some(p) = pts.iter().find(|p| p.size == 64) {
            fields.push(format!("\"msgs_64b_coalesce_off\": {}", p.msgs_off));
            fields.push(format!("\"msgs_64b_coalesce_on\": {}", p.msgs_on));
            fields.push(format!("\"mbps_64b_coalesce_on\": {}", p.mbps_on));
        }
    }
    if let Some(pts) = &perf.copy {
        let avoided: u64 = pts.iter().map(|p| p.copies_avoided).sum();
        let direct: u64 = pts.iter().map(|p| p.bytes_direct).sum();
        let received: u64 = pts.iter().map(|p| p.bytes_received).sum();
        fields.push(format!("\"copies_avoided\": {avoided}"));
        fields.push(format!("\"bytes_direct\": {direct}"));
        fields.push(format!("\"bytes_received\": {received}"));
    }
    if fields.is_empty() {
        None
    } else {
        Some(format!("{{{}}}", fields.join(", ")))
    }
}

/// FNV-1a over the `Debug` renderings of the default configurations every
/// figure harness builds from — any knob change (credits, MTU, timing
/// constants, TCP parameters) lands in the combined JSON's metadata, so a
/// baseline mismatch is attributable to config drift vs code drift.
fn config_fingerprint() -> u64 {
    let text = format!(
        "{:?}|{:?}|{:?}|{:?}",
        emp_proto::EmpConfig::default(),
        sockets_emp::SubstrateConfig::ds_da_uq(),
        kernel_tcp::TcpConfig::default(),
        hostsim::FsConfig::default(),
    );
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Generate the small-message figure, printing one machine-parsable line
/// per swept write size for the perf-smoke stage.
fn small_message_with_summary(profile: Profile, perf: &mut PerfPoints) -> Figure {
    let pts = figures::small_message_sweep(profile);
    for p in &pts {
        println!(
            "small-message-throughput: {}B msgs_sent coalesce_off={} coalesce_on={} \
             mbps_off={:.1} mbps_on={:.1} mbps_tcp={:.1}",
            p.size, p.msgs_off, p.msgs_on, p.mbps_off, p.mbps_on, p.mbps_tcp
        );
    }
    let fig = figures::small_message_figure(&pts);
    perf.small = Some(pts);
    fig
}

/// Generate the copy-avoidance figure, printing one machine-parsable line
/// per swept message size for the perf-smoke stage.
fn copy_avoidance_with_summary(profile: Profile, perf: &mut PerfPoints) -> Figure {
    let pts = figures::copy_avoidance_sweep(profile);
    for p in &pts {
        println!(
            "copy-avoidance: {}B copies_avoided={} bytes_direct={} bytes_received={} \
             us_off={:.2} us_on={:.2}",
            p.size, p.copies_avoided, p.bytes_direct, p.bytes_received, p.us_off, p.us_on
        );
    }
    let fig = figures::copy_avoidance_figure(&pts);
    perf.copy = Some(pts);
    fig
}

/// Run a 4-byte ping-pong with the event tracer on, print the latency
/// budget, and write the Chrome trace for Perfetto.
fn run_traced_pingpong() {
    use simnet::emp_trace;
    if !emp_trace::ENABLED {
        eprintln!(
            "tracing is compiled out; rebuild with --features trace \
             (e.g. cargo run --release -p emp-bench --bin figures \
             --features trace -- --trace)"
        );
        std::process::exit(2);
    }
    let sim = simnet::Sim::new();
    let tb = emp_apps::Testbed::emp_default(2);
    let run = emp_apps::pingpong::traced_pingpong(&sim, &tb, 4, 50);
    println!(
        "traced ping-pong: 4-byte one-way latency {:.2} us over 50 round trips",
        run.one_way_us
    );
    if run.dropped > 0 {
        println!("warning: {} events lost to ring overflow", run.dropped);
    }
    match emp_trace::Breakdown::compute(&run.events) {
        Some(b) => print!("{}", b.text_report()),
        None => println!("trace holds no complete write..read window"),
    }
    // Fault counters from every layer that can injure a frame (all zero on
    // the default lossless fabric — the point is that the plumbing that
    // the chaos suite relies on is alive in the traced build too).
    if let Some(cl) = tb.emp_cluster() {
        let (mut drops, mut corrupt, mut delayed) = (0u64, 0u64, 0u64);
        for p in cl.switch.port_stats() {
            drops += p.frames_dropped;
            corrupt += p.frames_corrupted;
            delayed += p.frames_delayed;
        }
        let (mut retx, mut ring_drops, mut dma_delays) = (0u64, 0u64, 0u64);
        for node in &cl.nodes {
            let s = node.nic.stats();
            retx += s.frames_retransmitted;
            ring_drops += s.nic_rx_ring_drops;
            dma_delays += s.nic_dma_delays;
        }
        println!(
            "fault counters: wire_drops={drops} wire_corrupt={corrupt} \
             wire_delayed={delayed} retransmits={retx} \
             nic_rx_ring_drops={ring_drops} nic_dma_delays={dma_delays}"
        );
    }
    let json_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(json_dir).expect("create target/figures");
    let path = json_dir.join("pingpong_trace.json");
    std::fs::write(&path, emp_trace::chrome_trace_json(&run.events)).expect("write chrome trace");
    println!(
        "({} events; chrome trace written to {} — load it in ui.perfetto.dev)",
        run.events.len(),
        path.display()
    );
}
