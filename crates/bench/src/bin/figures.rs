//! Regenerate the paper's figures.
//!
//! ```text
//! cargo run --release -p emp-bench --bin figures            # all, full sweeps
//! cargo run --release -p emp-bench --bin figures -- --quick # smoke profile
//! cargo run --release -p emp-bench --bin figures -- fig14   # one figure
//! ```
//!
//! Tables print to stdout; JSON lands in `target/figures/<id>.json`.

use emp_bench::figures;
use emp_bench::{Figure, Profile};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = if args.iter().any(|a| a == "--quick") {
        Profile::Quick
    } else {
        Profile::Full
    };
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let figures: Vec<Figure> = if wanted.is_empty() {
        figures::all_figures(profile)
    } else {
        let mut out = Vec::new();
        for name in wanted {
            let fig = match name.as_str() {
                "fig11" => figures::fig11(profile),
                "fig12" => figures::fig12(profile),
                "fig13a" | "fig13" => figures::fig13_latency(profile),
                "fig13b" => figures::fig13_bandwidth(profile),
                "fig14" => figures::fig14(profile),
                "fig15" => figures::fig15(profile),
                "fig16" => figures::fig16(profile),
                "fig17" => figures::fig17(profile),
                "ablation-commthread" => figures::ablation_commthread(profile),
                "ablation-piggyback" => figures::ablation_piggyback(profile),
                "cpu-utilization" => figures::cpu_utilization(profile),
                "ablation-nic-cpus" => figures::ablation_nic_cpus(profile),
                "connect-time" => figures::connect_time(profile),
                "datacenter-kv" => figures::datacenter_kv(profile),
                other => {
                    eprintln!("unknown figure '{other}'");
                    std::process::exit(2);
                }
            };
            out.push(fig);
        }
        out
    };

    let json_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(json_dir).expect("create target/figures");
    for fig in &figures {
        println!("{}", fig.to_table());
        let path = json_dir.join(format!("{}.json", fig.id));
        std::fs::write(&path, fig.to_json()).expect("write figure json");
    }
    println!("(json written to target/figures/)");
}
