//! `empstat` — the testbed's `netstat`/`ss`: run the standard workload
//! (ping-pong + event-loop webserver on one substrate testbed) and print
//! everything the always-on telemetry registry collected.
//!
//! ```text
//! cargo run --release -p emp-bench --bin empstat             # table
//! cargo run --release -p emp-bench --bin empstat -- --json   # JSON export
//! cargo run --release -p emp-bench --bin empstat -- --prom   # Prometheus text
//! cargo run --release -p emp-bench --bin empstat -- --overhead
//! cargo run --release -p emp-bench --bin empstat -- --overload
//! ```
//!
//! With `--json`/`--prom` the export goes to stdout and the workload
//! summary + self-check lines to stderr, so the output pipes cleanly into
//! files or scrapers. The process exits non-zero if the self-check fails
//! (a named histogram recorded nothing) — the `telemetry-smoke` stage of
//! `ci.sh` relies on that. `--overhead` instead microbenchmarks the
//! telemetry hot paths and fails if the estimated share of an
//! instrumented ping-pong exceeds the 2% budget. `--overload` runs the
//! connect-storm + slowloris smoke on both stacks and fails unless
//! admission control refused connections while real clients were still
//! served, the refusals show up as telemetry counters, the idle reaper
//! fired, and nothing leaked — the `overload-smoke` stage of `ci.sh`
//! relies on that.

use emp_bench::stat;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.first().map(String::as_str) {
        None => "table",
        Some("--json") => "json",
        Some("--prom") => "prom",
        Some("--overhead") => "overhead",
        Some("--overload") => "overload",
        Some(other) => {
            eprintln!("usage: empstat [--json | --prom | --overhead | --overload] (got '{other}')");
            std::process::exit(2);
        }
    };

    if mode == "overload" {
        match stat::run_overload_smoke() {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("FAIL: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if mode == "overhead" {
        let report = stat::measure_overhead();
        println!("{}", report.text());
        if report.overhead_pct >= 2.0 {
            eprintln!(
                "FAIL: telemetry overhead {:.3}% exceeds the 2% budget",
                report.overhead_pct
            );
            std::process::exit(1);
        }
        return;
    }

    let run = stat::run_standard_workload();
    let summary = stat::workload_summary(&run);
    let check = match stat::self_check(&run.snapshot) {
        Ok(line) => line,
        Err(e) => {
            eprintln!("{summary}");
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
    };
    match mode {
        "table" => {
            println!("{summary}");
            println!("{check}");
            println!();
            print!("{}", run.snapshot.render_table());
        }
        "json" => {
            eprintln!("{summary}");
            eprintln!("{check}");
            print!("{}", run.snapshot.to_json());
        }
        "prom" => {
            eprintln!("{summary}");
            eprintln!("{check}");
            print!("{}", run.snapshot.render_prom());
        }
        _ => unreachable!(),
    }
}
