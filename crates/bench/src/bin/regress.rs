//! `regress` — the bench regression gate: compare a fresh
//! `figures --json` file against the committed baseline and exit non-zero
//! on regressions (see `emp_bench::regress` for what is compared).
//!
//! ```text
//! cargo run --release -p emp-bench --bin figures -- --quick \
//!     --json target/figures/fresh.json \
//!     fig11 fig13b small-message-throughput copy-avoidance
//! cargo run --release -p emp-bench --bin regress -- \
//!     --baseline BENCH_5.json --fresh target/figures/fresh.json
//! ```

use emp_bench::regress;

fn main() {
    let mut baseline: Option<String> = None;
    let mut fresh: Option<String> = None;
    let mut tolerance = regress::DEFAULT_TOLERANCE;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline = it.next(),
            "--fresh" => fresh = it.next(),
            "--tolerance" => {
                tolerance = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--tolerance needs a number");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("usage: regress --baseline <json> --fresh <json> [--tolerance <f>] (got '{other}')");
                std::process::exit(2);
            }
        }
    }
    let (Some(baseline), Some(fresh)) = (baseline, fresh) else {
        eprintln!("usage: regress --baseline <json> --fresh <json> [--tolerance <f>]");
        std::process::exit(2);
    };
    let base_text = std::fs::read_to_string(&baseline)
        .unwrap_or_else(|e| fatal(&format!("read {baseline}: {e}")));
    let fresh_text =
        std::fs::read_to_string(&fresh).unwrap_or_else(|e| fatal(&format!("read {fresh}: {e}")));
    let report = regress::compare(&base_text, &fresh_text, tolerance).unwrap_or_else(|e| fatal(&e));
    print!("{}", report.text());
    if report.failures() > 0 {
        std::process::exit(1);
    }
}

fn fatal(msg: &str) -> ! {
    eprintln!("regress: {msg}");
    std::process::exit(1);
}
