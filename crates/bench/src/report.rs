//! Figure/table reporting: the structured output of each experiment,
//! printable as the rows the paper's figures plot, and serializable for
//! downstream plotting.

/// One plotted series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label (e.g. "DS_DA_UQ", "TCP 16K").
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// One reproduced figure.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Paper figure id ("fig11", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// X axis meaning.
    pub x_label: String,
    /// Y axis meaning.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Start an empty figure.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Append a series.
    pub fn push(&mut self, label: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push(Series {
            label: label.into(),
            points,
        });
    }

    /// Render as an aligned text table, one row per x value.
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        let _ = write!(out, "{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>14}", s.label);
        }
        let _ = writeln!(out, "    [{}]", self.y_label);
        for x in xs {
            let _ = write!(out, "{x:>14.0}");
            for s in &self.series {
                match s.points.iter().find(|p| p.0 == x) {
                    Some((_, y)) => {
                        let _ = write!(out, "{y:>14.2}");
                    }
                    None => {
                        let _ = write!(out, "{:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serialize as JSON (hand-rolled: the structure is trivial and the
    /// workspace deliberately avoids a JSON dependency).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"id\": \"{}\",\n  \"title\": \"{}\",\n  \"x_label\": \"{}\",\n  \"y_label\": \"{}\",\n  \"series\": [\n",
            esc(&self.id),
            esc(&self.title),
            esc(&self.x_label),
            esc(&self.y_label)
        ));
        for (i, s) in self.series.iter().enumerate() {
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|(x, y)| format!("[{x}, {y}]"))
                .collect();
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"points\": [{}]}}{}\n",
                esc(&s.label),
                pts.join(", "),
                if i + 1 == self.series.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The y value of `label` at `x`, if present.
    pub fn value(&self, label: &str, x: f64) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.label == label)?
            .points
            .iter()
            .find(|p| p.0 == x)
            .map(|p| p.1)
    }
}

/// Run sweep points in parallel OS threads (each point owns its
/// deterministic simulation) and return results in input order.
pub fn parallel_sweep<X, Y, F>(points: &[X], f: F) -> Vec<Y>
where
    X: Clone + Send + Sync,
    Y: Send,
    F: Fn(&X) -> Y + Send + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = points.iter().map(|p| scope.spawn(|| f(p))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_rows() {
        let mut fig = Figure::new("figX", "demo", "size", "us");
        fig.push("a", vec![(4.0, 1.5), (16.0, 2.5)]);
        fig.push("b", vec![(4.0, 3.0)]);
        let t = fig.to_table();
        assert!(t.contains("figX"));
        assert!(t.contains("1.50"));
        assert!(t.contains("3.00"));
        assert!(t.lines().count() >= 4);
        assert_eq!(fig.value("a", 16.0), Some(2.5));
        assert_eq!(fig.value("b", 16.0), None);
    }

    #[test]
    fn parallel_sweep_preserves_order() {
        let xs = vec![1u32, 2, 3, 4, 5, 6, 7, 8];
        let ys = parallel_sweep(&xs, |x| x * 10);
        assert_eq!(ys, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }
}
