//! Criterion wrapper for the Figure 11 harness (latency of the substrate
//! variants): times a representative 4-byte ping-pong per variant.

use criterion::{criterion_group, criterion_main, Criterion};
use emp_apps::{pingpong, Testbed};
use emp_proto::EmpConfig;
use simnet::Sim;
use sockets_emp::SubstrateConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    for (label, cfg) in [
        ("ds", SubstrateConfig::ds()),
        ("ds_da_uq", SubstrateConfig::ds_da_uq()),
        ("dg", SubstrateConfig::dg()),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let sim = Sim::new();
                let tb = Testbed::emp(2, EmpConfig::default(), cfg.clone(), label);
                pingpong::one_way_latency_us(&sim, &tb, 4, 10)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
