//! Criterion wrapper for the Figure 12 harness (delayed-ack latency vs
//! credit size).

use criterion::{criterion_group, criterion_main, Criterion};
use emp_apps::{pingpong, Testbed};
use emp_proto::EmpConfig;
use simnet::Sim;
use sockets_emp::SubstrateConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    for credits in [1u32, 32] {
        g.bench_function(format!("ds_da_credits_{credits}"), |b| {
            b.iter(|| {
                let sim = Sim::new();
                let tb = Testbed::emp(
                    2,
                    EmpConfig::default(),
                    SubstrateConfig::ds_da().with_credits(credits),
                    "ds-da",
                );
                pingpong::one_way_latency_us(&sim, &tb, 4, 10)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
