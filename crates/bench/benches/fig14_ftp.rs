//! Criterion wrapper for the Figure 14 harness (ftp over RAM disks).

use criterion::{criterion_group, criterion_main, Criterion};
use emp_apps::{ftp, Testbed};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("ftp_emp_1mb", |b| {
        b.iter(|| ftp::transfer_mbps(&Testbed::emp_default(2), 1 << 20))
    });
    g.bench_function("ftp_tcp_1mb", |b| {
        b.iter(|| ftp::transfer_mbps(&Testbed::kernel_default(2), 1 << 20))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
