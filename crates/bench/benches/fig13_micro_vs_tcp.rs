//! Criterion wrapper for the Figure 13 harnesses (latency and bandwidth,
//! substrate vs kernel TCP).

use criterion::{criterion_group, criterion_main, Criterion};
use emp_apps::{bandwidth, pingpong, Testbed};
use simnet::Sim;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("latency_emp", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let tb = Testbed::emp_default(2);
            pingpong::one_way_latency_us(&sim, &tb, 4, 10)
        })
    });
    g.bench_function("latency_tcp", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let tb = Testbed::kernel_default(2);
            pingpong::one_way_latency_us(&sim, &tb, 4, 10)
        })
    });
    g.bench_function("bandwidth_emp", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let tb = Testbed::emp_default(2);
            bandwidth::throughput_mbps(&sim, &tb, 64 * 1024, 1 << 20)
        })
    });
    g.bench_function("bandwidth_tcp", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let tb = Testbed::kernel_default(2);
            bandwidth::throughput_mbps(&sim, &tb, 64 * 1024, 1 << 20)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
