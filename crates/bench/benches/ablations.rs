//! Criterion wrapper for the design-choice ablations: the §5.2
//! communication-thread alternatives and §6.1 piggy-backed acks.

use criterion::{criterion_group, criterion_main, Criterion};
use emp_apps::{pingpong, Testbed};
use emp_proto::EmpConfig;
use simnet::Sim;
use sockets_emp::{RecvMode, SubstrateConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    for (label, mode) in [
        ("direct", RecvMode::Direct),
        ("commthread_polling", RecvMode::CommThreadPolling),
        ("commthread_blocking", RecvMode::CommThreadBlocking),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = SubstrateConfig::ds_da_uq();
                cfg.recv_mode = mode;
                let sim = Sim::new();
                let tb = Testbed::emp(2, EmpConfig::default(), cfg, label);
                pingpong::one_way_latency_us(&sim, &tb, 4, 5)
            })
        });
    }
    g.bench_function("piggyback_on", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let tb = Testbed::emp(
                2,
                EmpConfig::default(),
                SubstrateConfig::ds_da().with_credits(4).with_piggyback(),
                "pb",
            );
            pingpong::one_way_latency_us(&sim, &tb, 4, 5)
        })
    });
    g.bench_function("single_cpu_nic_bidirectional", |b| {
        b.iter(|| {
            let mut emp_cfg = EmpConfig::default();
            emp_cfg.nic.single_cpu = true;
            let sim = Sim::new();
            let tb = Testbed::emp(2, emp_cfg, SubstrateConfig::ds_da_uq(), "1cpu");
            emp_apps::bandwidth::bidirectional_mbps(&sim, &tb, 64 * 1024, 1 << 20)
        })
    });
    g.bench_function("datacenter_kv_emp", |b| {
        b.iter(|| emp_apps::kvstore::run_workload(&Testbed::emp_default(4), 3, 20, 128, 0.9, 7))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
