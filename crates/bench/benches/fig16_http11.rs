//! Criterion wrapper for the Figure 16 harness (HTTP/1.1 web server).

use criterion::{criterion_group, criterion_main, Criterion};
use emp_apps::{webserver, Testbed};
use emp_proto::EmpConfig;
use sockets_emp::SubstrateConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    g.bench_function("http11_emp", |b| {
        b.iter(|| {
            let tb = Testbed::emp(
                4,
                EmpConfig::default(),
                SubstrateConfig::ds_da_uq().with_credits(4),
                "emp-c4",
            );
            webserver::run_once(&tb, webserver::HttpVersion::Http11, 1024, 8)
        })
    });
    g.bench_function("http11_tcp", |b| {
        b.iter(|| {
            let tb = Testbed::kernel_default(4);
            webserver::run_once(&tb, webserver::HttpVersion::Http11, 1024, 8)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
