//! Criterion wrapper for the Figure 15 harness (HTTP/1.0 web server).

use criterion::{criterion_group, criterion_main, Criterion};
use emp_apps::{webserver, Testbed};
use emp_proto::EmpConfig;
use sockets_emp::SubstrateConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.bench_function("http10_emp", |b| {
        b.iter(|| {
            let tb = Testbed::emp(
                4,
                EmpConfig::default(),
                SubstrateConfig::ds_da_uq().with_credits(4),
                "emp-c4",
            );
            webserver::run_once(&tb, webserver::HttpVersion::Http10, 1024, 4)
        })
    });
    g.bench_function("http10_tcp", |b| {
        b.iter(|| {
            let tb = Testbed::kernel_default(4);
            webserver::run_once(&tb, webserver::HttpVersion::Http10, 1024, 4)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
