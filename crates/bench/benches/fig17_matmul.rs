//! Criterion wrapper for the Figure 17 harness (distributed matmul).

use criterion::{criterion_group, criterion_main, Criterion};
use emp_apps::{matmul, Testbed};
use simnet::Sim;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17");
    g.sample_size(10);
    g.bench_function("matmul_emp_n48", |b| {
        b.iter(|| {
            let sim = Sim::new();
            matmul::run(&sim, &Testbed::emp_default(4), 48)
        })
    });
    g.bench_function("matmul_tcp_n48", |b| {
        b.iter(|| {
            let sim = Sim::new();
            matmul::run(&sim, &Testbed::kernel_default(4), 48)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
