//! # sockets-over-emp
//!
//! A full reproduction of **"High Performance User Level Sockets over
//! Gigabit Ethernet"** (Balaji, Shivam, Wyckoff, Panda — IEEE Cluster
//! 2002) as a Rust workspace: the sockets-over-EMP substrate, every
//! subsystem it stands on (EMP protocol, Tigon2-style NIC, Gigabit
//! Ethernet fabric, kernel TCP baseline, host models), the paper's
//! applications, and a benchmark harness that regenerates every figure of
//! its evaluation. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured numbers.
//!
//! This crate is a facade over the workspace members:
//!
//! * [`simnet`] — deterministic discrete-event engine + Ethernet fabric;
//! * [`hostsim`] — host cost models, pinned memory, RAM disk;
//! * [`tigon_nic`] — the programmable NIC;
//! * [`emp_proto`] — the EMP messaging protocol;
//! * [`kernel_tcp`] — the kernel TCP/UDP/IP baseline;
//! * [`sockets_emp`] — **the paper's contribution**: user-level sockets
//!   over EMP;
//! * [`emp_apps`] — ftp, web server, matmul, microbenchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use sockets_over_emp::prelude::*;
//!
//! let sim = Sim::new();
//! let cluster = emp_proto::build_cluster(2, EmpConfig::default(), SwitchConfig::default());
//! let server = EmpSockets::new(cluster.nodes[1].endpoint(), SubstrateConfig::ds_da_uq());
//! let client = EmpSockets::new(cluster.nodes[0].endpoint(), SubstrateConfig::ds_da_uq());
//! let addr = SockAddr::new(cluster.nodes[1].addr(), 80);
//!
//! sim.spawn("server", move |ctx| {
//!     let listener = server.listen(ctx, 80, 8)?.expect("port free");
//!     let conn = listener.accept(ctx)?.expect("connection");
//!     let msg = conn.read(ctx, 64)?.expect("data");
//!     conn.write(ctx, &msg)?.expect("echo");
//!     Ok(())
//! });
//! sim.spawn("client", move |ctx| {
//!     let conn = client.connect(ctx, addr)?.expect("connect");
//!     conn.write(ctx, b"hello")?.expect("send");
//!     let reply = conn.read(ctx, 64)?.expect("reply");
//!     assert_eq!(&reply[..], b"hello");
//!     Ok(())
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]

pub use emp_apps;
pub use emp_proto;
pub use hostsim;
pub use kernel_tcp;
pub use simnet;
pub use sockets_emp;

/// The names most programs need.
pub mod prelude {
    pub use emp_proto::{EmpConfig, EmpEndpoint};
    pub use simnet::{Sim, SimAccess, SimDuration, SimTime, SwitchConfig};
    pub use sockets_emp::{Connection, EmpSockets, FdTable, Listener, SockAddr, SubstrateConfig};
}
