//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in a hermetic environment with no access to a
//! crates registry, so the handful of external dependencies are vendored
//! as minimal API-compatible stubs. Only the surface this repository
//! actually uses is provided: `Mutex` with non-poisoning `lock`.

use std::fmt;
use std::sync::PoisonError;

/// A mutex that (like the real `parking_lot::Mutex`) never poisons: a
/// panic while holding the lock leaves the data accessible.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Access the data without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}
