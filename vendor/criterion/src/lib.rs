//! Offline stand-in for the `criterion` crate.
//!
//! Implements the narrow API the workspace's benches use: groups,
//! `sample_size`, `bench_function`, `iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs `sample_size`
//! iterations and prints mean wall-clock time per iteration — no
//! statistics, outlier analysis, or HTML reports.

use std::hint;
use std::time::Instant;

/// Benchmark driver handed to the `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed_ns: 0,
        };
        f(&mut b);
        let mean_ns = b.elapsed_ns as f64 / self.sample_size as f64;
        println!(
            "{}/{}: {:.3} ms/iter ({} iters)",
            self.name,
            id,
            mean_ns / 1e6,
            self.sample_size
        );
        self
    }

    /// End the group (no-op in the stub; kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Opaque value barrier, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
