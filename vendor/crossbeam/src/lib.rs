//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided, and only the pieces the
//! simulator's process scheduler uses: `bounded`, blocking `send`/`recv`,
//! and their `_timeout` variants. The zero-capacity (rendezvous) case is
//! load-bearing — the discrete-event engine relies on `send` blocking
//! until a receiver has taken the value to enforce strict alternation
//! between the event loop and process threads — so this implementation
//! tracks, per queued value, whether it has been consumed, and `send`
//! does not return until its own value has been received.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        /// Queued values tagged with their send sequence number.
        queue: VecDeque<(u64, T)>,
        next_seq: u64,
        /// All sequence numbers below this have been consumed.
        popped: u64,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
        cap: usize,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Create a bounded channel of capacity `cap`. Capacity 0 is a
    /// rendezvous channel: every send blocks until a receiver takes the
    /// value.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                next_seq: 0,
                popped: 0,
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
            cap,
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// `send` failed because all receivers are gone.
    pub struct SendError<T>(pub T);

    /// `send_timeout` failure.
    pub enum SendTimeoutError<T> {
        /// No receiver took the value in time; the value is returned.
        Timeout(T),
        /// All receivers are gone; the value is returned.
        Disconnected(T),
    }

    /// `recv` failed because the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// `recv_timeout` failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived in time.
        Timeout,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Debug for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("SendTimeoutError::Timeout(..)"),
                SendTimeoutError::Disconnected(_) => {
                    f.write_str("SendTimeoutError::Disconnected(..)")
                }
            }
        }
    }

    impl<T> Sender<T> {
        /// Block until the value is delivered (for capacity 0: until a
        /// receiver has taken it).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self.send_inner(value, None) {
                Ok(()) => Ok(()),
                Err(SendTimeoutError::Disconnected(v)) => Err(SendError(v)),
                Err(SendTimeoutError::Timeout(_)) => unreachable!("no deadline was set"),
            }
        }

        /// Like [`Sender::send`] with a deadline.
        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            self.send_inner(value, Some(Instant::now() + timeout))
        }

        fn send_inner(
            &self,
            value: T,
            deadline: Option<Instant>,
        ) -> Result<(), SendTimeoutError<T>> {
            let chan = &*self.chan;
            let mut st = chan.lock();
            if st.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            // For positive capacity, wait for room before enqueueing.
            while chan.cap > 0 && st.queue.len() >= chan.cap {
                if st.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                match wait(chan, st, deadline) {
                    Ok(g) => st = g,
                    Err(g) => {
                        drop(g);
                        return Err(SendTimeoutError::Timeout(value));
                    }
                }
            }
            let seq = st.next_seq;
            st.next_seq += 1;
            st.queue.push_back((seq, value));
            chan.cv.notify_all();
            if chan.cap > 0 {
                return Ok(());
            }
            // Rendezvous: block until our value has been consumed.
            loop {
                if st.popped > seq {
                    return Ok(());
                }
                let still_queued = |st: &mut State<T>| {
                    st.queue
                        .iter()
                        .position(|(s, _)| *s == seq)
                        .and_then(|i| st.queue.remove(i))
                        .map(|(_, v)| v)
                };
                if st.receivers == 0 {
                    return match still_queued(&mut st) {
                        Some(v) => Err(SendTimeoutError::Disconnected(v)),
                        // A receiver took it before disconnecting.
                        None => Ok(()),
                    };
                }
                match wait(chan, st, deadline) {
                    Ok(g) => st = g,
                    Err(mut g) => {
                        return match still_queued(&mut g) {
                            Some(v) => Err(SendTimeoutError::Timeout(v)),
                            None => Ok(()),
                        };
                    }
                }
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.recv_inner(None).map_err(|e| match e {
                RecvTimeoutError::Disconnected => RecvError,
                RecvTimeoutError::Timeout => unreachable!("no deadline was set"),
            })
        }

        /// Like [`Receiver::recv`] with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_inner(Some(Instant::now() + timeout))
        }

        fn recv_inner(&self, deadline: Option<Instant>) -> Result<T, RecvTimeoutError> {
            let chan = &*self.chan;
            let mut st = chan.lock();
            loop {
                if let Some((seq, v)) = st.queue.pop_front() {
                    st.popped = seq + 1;
                    chan.cv.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                match wait(chan, st, deadline) {
                    Ok(g) => st = g,
                    Err(g) => {
                        drop(g);
                        return Err(RecvTimeoutError::Timeout);
                    }
                }
            }
        }
    }

    /// Wait on the condvar until notified or the deadline passes.
    /// `Err` carries the guard back when the deadline has passed.
    #[allow(clippy::type_complexity)]
    fn wait<'a, T>(
        chan: &'a Chan<T>,
        guard: MutexGuard<'a, State<T>>,
        deadline: Option<Instant>,
    ) -> Result<MutexGuard<'a, State<T>>, MutexGuard<'a, State<T>>> {
        match deadline {
            None => Ok(chan.cv.wait(guard).unwrap_or_else(PoisonError::into_inner)),
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    return Err(guard);
                }
                let (g, res) = chan
                    .cv
                    .wait_timeout(guard, d - now)
                    .unwrap_or_else(PoisonError::into_inner);
                if res.timed_out() && Instant::now() >= d {
                    Err(g)
                } else {
                    Ok(g)
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.chan.lock().senders -= 1;
            self.chan.cv.notify_all();
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.lock().receivers -= 1;
            self.chan.cv.notify_all();
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        #[test]
        fn rendezvous_send_blocks_until_received() {
            let (tx, rx) = bounded::<u32>(0);
            let sent = Arc::new(AtomicBool::new(false));
            let sent2 = Arc::clone(&sent);
            let h = std::thread::spawn(move || {
                tx.send(7).unwrap();
                sent2.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(50));
            assert!(!sent.load(Ordering::SeqCst), "send returned before recv");
            assert_eq!(rx.recv().unwrap(), 7);
            h.join().unwrap();
            assert!(sent.load(Ordering::SeqCst));
        }

        #[test]
        fn timeout_returns_value_and_disconnect_is_detected() {
            let (tx, rx) = bounded::<u32>(0);
            match tx.send_timeout(1, Duration::from_millis(10)) {
                Err(SendTimeoutError::Timeout(v)) => assert_eq!(v, 1),
                other => panic!("expected timeout, got {other:?}"),
            }
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            ));
            drop(tx);
            assert!(matches!(rx.recv(), Err(RecvError)));
        }
    }
}
