//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset of the real crate's API this workspace uses:
//! cheaply-cloneable `Bytes` (an `Arc<[u8]>` plus a window), `BytesMut`
//! as a growable builder, and the little-endian `BufMut` writers the
//! wire codecs rely on. Slicing and cloning are O(1) and never copy,
//! matching the real crate's cost model (which matters here: the
//! simulator charges explicit costs for copies, so the buffer type must
//! not smuggle any in).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Clones and slices share
/// the same backing allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation shared with anything).
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    /// Wrap a static slice. (The stub copies; the distinction only
    /// matters for allocation counts, not semantics.)
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this buffer sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range for Bytes of len {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off the tail at `at`: `self` keeps `[0, at)`, the returned
    /// buffer holds `[at, len)`. O(1), no copy.
    pub fn split_off(&mut self, at: usize) -> Self {
        assert!(
            at <= self.len(),
            "split_off at {at} out of range for Bytes of len {}",
            self.len()
        );
        let tail = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// Split off the head before `at`: the returned buffer holds
    /// `[0, at)`, `self` keeps `[at, len)`. O(1), no copy.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(
            at <= self.len(),
            "split_to at {at} out of range for Bytes of len {}",
            self.len()
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copy the view out into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

macro_rules! eq_via_slice {
    ($($other:ty),*) => {$(
        impl PartialEq<$other> for Bytes {
            fn eq(&self, other: &$other) -> bool {
                self.as_ref() == &other[..]
            }
        }
        impl PartialEq<Bytes> for $other {
            fn eq(&self, other: &Bytes) -> bool {
                &self[..] == other.as_ref()
            }
        }
    )*};
}
eq_via_slice!([u8], &[u8], Vec<u8>);

/// A growable byte buffer; `freeze` converts it into [`Bytes`].
#[derive(Clone, Default)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }

    /// Grow or shrink to `new_len`, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.vec.resize(new_len, value);
    }

    /// Drop the contents.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.len())
    }
}

/// Write-side trait: the little-endian putters the wire codecs use.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a `u16`, little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append an `f64`, little-endian IEEE-754 bits.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u16`, big-endian.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a `u32`, big-endian.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let tail = b.split_off(2);
        assert_eq!(&b[..], &[1, 2]);
        assert_eq!(&tail[..], &[3, 4, 5]);
    }

    #[test]
    fn bufmut_putters_round_trip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u16_le(0x0102);
        m.put_u32_le(0x03040506);
        let b = m.freeze();
        assert_eq!(&b[..], &[7, 0x02, 0x01, 0x06, 0x05, 0x04, 0x03]);
    }
}
