//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the real macro/strategy surface this
//! workspace's property tests use: the `proptest!` macro (with an
//! optional `#![proptest_config(..)]` header), integer-range and tuple
//! strategies, `prop::collection::vec`, `any::<T>()`, and the
//! `prop_assert*` macros. Cases are generated from a fixed seed per
//! case index, so failures are reproducible; there is no shrinking — a
//! failing case panics with the assertion message directly.

use std::marker::PhantomData;
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic per-case generator (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case number `case`; fixed base seed keeps runs
    /// reproducible.
    pub fn deterministic(case: u64) -> Self {
        TestRng {
            state: 0x5EED_0F_50CCE7u64 ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}
strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
strategy_for_tuple!(A: 0, B: 1);
strategy_for_tuple!(A: 0, B: 1, C: 2);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_for_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_for_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` — see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = Strategy::sample(&self.size, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};

    /// Namespace mirror so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Property-test entry point; see crate docs for the supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::deterministic(case as u64);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert within a property; panics (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_tuples_and_vecs_sample_in_bounds(
            x in 10u64..20,
            pair in (0u32..5, 1usize..3),
            items in prop::collection::vec(any::<u8>(), 1..8),
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(pair.0 < 5 && (1..3).contains(&pair.1));
            prop_assert!(!items.is_empty() && items.len() < 8);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_also_parses(v in 0i32..3) {
            prop_assert!((0..3).contains(&v), "v={}", v);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| crate::TestRng::deterministic(c).next_u64())
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| crate::TestRng::deterministic(c).next_u64())
            .collect();
        assert_eq!(a, b);
    }
}
