//! Offline stand-in for the `rand` crate.
//!
//! Provides `StdRng::seed_from_u64` plus the `Rng` methods this
//! workspace uses (`gen_range` over integer ranges, `gen_bool`). The
//! generator is splitmix64 — deterministic for a given seed, which is
//! all the workload generators here need. Range sampling uses a simple
//! modulo reduction; the negligible modulo bias is irrelevant for
//! synthetic traffic shapes.

use std::ops::Range;

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        // 53 high-quality bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}
sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (splitmix64 in this stub).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_runs_are_deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u32 = a.gen_range(0..256u32);
            assert_eq!(x, b.gen_range(0..256u32));
            assert!(x < 256);
        }
        let mut c = StdRng::seed_from_u64(7);
        let heads = (0..10_000).filter(|_| c.gen_bool(0.3)).count();
        assert!(
            (2500..3500).contains(&heads),
            "gen_bool(0.3) gave {heads}/10000"
        );
    }
}
